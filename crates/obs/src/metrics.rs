//! Cluster-wide metrics: a cheap, sharded registry of named counters,
//! gauges and histograms.
//!
//! Handle acquisition (`counter()`, `gauge()`, `histogram()`) takes a
//! shard lock and hashes the (name, labels) key; subsystems do it once at
//! construction and store the returned handle. The handles themselves are
//! `Arc`s around atomics (or a mutex-wrapped [`Histogram`]), so the hot
//! path is a single atomic RMW — cheap enough to leave enabled during the
//! figure harnesses (see the overhead test in `tests/observability.rs`).
//!
//! Per-node scoping uses labels, Prometheus-style:
//! `simnode_served_total{node="tafdb3"}`. [`Registry::snapshot`] freezes
//! every metric into a [`MetricsSnapshot`] that renders as Prometheus
//! exposition text or serializes to JSON (vendored serde).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use mantle_types::hist::Histogram;
use parking_lot::Mutex;
use serde::Serialize;

/// Number of registry shards; keys are spread by hash to keep handle
/// acquisition contention low when many nodes register at once.
const SHARDS: usize = 16;

/// A monotonically increasing counter.
#[derive(Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways, plus a high-water-mark helper.
#[derive(Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is higher (high-water marks).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A latency/size distribution backed by [`mantle_types::hist::Histogram`]
/// (log-bucketed, ~4.6% relative error).
#[derive(Clone, Default)]
pub struct HistogramMetric {
    value: Arc<Mutex<Histogram>>,
}

impl HistogramMetric {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.value.lock().record(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.value.lock().count()
    }

    /// A point-in-time copy of the distribution.
    pub fn freeze(&self) -> Histogram {
        self.value.lock().clone()
    }
}

/// Label set: sorted key/value pairs, e.g. `[("node", "tafdb3")]`.
pub type Labels = Vec<(String, String)>;

#[derive(Clone, PartialEq, Eq, Hash)]
struct MetricKey {
    name: &'static str,
    labels: Labels,
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramMetric),
}

/// The sharded metric registry. Most callers use the process-wide
/// [`global()`] instance through the free functions in this module.
#[derive(Default)]
pub struct Registry {
    shards: [Mutex<HashMap<MetricKey, Metric>>; SHARDS],
}

fn owned_labels(labels: &[(&str, &str)]) -> Labels {
    let mut out: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

impl Registry {
    /// Creates an empty registry (tests; production uses [`global()`]).
    pub fn new() -> Self {
        Registry::default()
    }

    fn shard(&self, key: &MetricKey) -> &Mutex<HashMap<MetricKey, Metric>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Returns the counter `name{labels}`, creating it on first use.
    ///
    /// Panics if the same key was previously registered with a different
    /// metric type — a naming bug worth failing loudly on.
    pub fn counter(&self, name: &'static str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey {
            name,
            labels: owned_labels(labels),
        };
        let mut shard = self.shard(&key).lock();
        match shard
            .entry(key)
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Returns the gauge `name{labels}`, creating it on first use.
    pub fn gauge(&self, name: &'static str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey {
            name,
            labels: owned_labels(labels),
        };
        let mut shard = self.shard(&key).lock();
        match shard
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Returns the histogram `name{labels}`, creating it on first use.
    pub fn histogram(&self, name: &'static str, labels: &[(&str, &str)]) -> HistogramMetric {
        let key = MetricKey {
            name,
            labels: owned_labels(labels),
        };
        let mut shard = self.shard(&key).lock();
        match shard
            .entry(key)
            .or_insert_with(|| Metric::Histogram(HistogramMetric::default()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Freezes every registered metric into a serializable snapshot,
    /// sorted by name then labels for stable output.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for shard in &self.shards {
            for (key, metric) in shard.lock().iter() {
                let name = key.name.to_string();
                let labels = key.labels.clone();
                match metric {
                    Metric::Counter(c) => counters.push(CounterSample {
                        name,
                        labels,
                        value: c.get(),
                    }),
                    Metric::Gauge(g) => gauges.push(GaugeSample {
                        name,
                        labels,
                        value: g.get(),
                    }),
                    Metric::Histogram(h) => {
                        let hist = h.freeze();
                        histograms.push(HistogramSample {
                            name,
                            labels,
                            count: hist.count(),
                            mean: hist.mean(),
                            min: if hist.count() > 0 { hist.min() } else { 0 },
                            max: hist.max(),
                            p50: hist.quantile(0.50),
                            p90: hist.quantile(0.90),
                            p99: hist.quantile(0.99),
                        });
                    }
                }
            }
        }
        counters.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        gauges.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        histograms.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// One counter at snapshot time.
#[derive(Clone, Debug, Serialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Labels,
    /// Counter value.
    pub value: u64,
}

/// One gauge at snapshot time.
#[derive(Clone, Debug, Serialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Labels,
    /// Gauge value.
    pub value: i64,
}

/// One histogram at snapshot time (summary quantiles, not raw buckets).
#[derive(Clone, Debug, Serialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Labels,
    /// Number of samples.
    pub count: u64,
    /// Mean sample value.
    pub mean: f64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// A point-in-time copy of every metric in a registry.
#[derive(Clone, Debug, Serialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by (name, labels).
    pub counters: Vec<CounterSample>,
    /// All gauges, sorted by (name, labels).
    pub gauges: Vec<GaugeSample>,
    /// All histograms, sorted by (name, labels).
    pub histograms: Vec<HistogramSample>,
}

fn render_labels(labels: &Labels) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", pairs.join(","))
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double quote and newline (in that order, so the escape
/// character itself is escaped first).
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format.
    /// Histograms are emitted as summaries (`_count`, `_sum`-less
    /// quantile series) since the registry keeps log-bucketed quantiles,
    /// not cumulative buckets.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        // Series are sorted by name, so one `# TYPE` line heads each
        // metric family even when it has many label sets.
        let mut last = String::new();
        for c in &self.counters {
            if c.name != last {
                out.push_str(&format!("# TYPE {} counter\n", c.name));
                last.clone_from(&c.name);
            }
            out.push_str(&format!(
                "{}{} {}\n",
                c.name,
                render_labels(&c.labels),
                c.value
            ));
        }
        last.clear();
        for g in &self.gauges {
            if g.name != last {
                out.push_str(&format!("# TYPE {} gauge\n", g.name));
                last.clone_from(&g.name);
            }
            out.push_str(&format!(
                "{}{} {}\n",
                g.name,
                render_labels(&g.labels),
                g.value
            ));
        }
        last.clear();
        for h in &self.histograms {
            if h.name != last {
                out.push_str(&format!("# TYPE {} summary\n", h.name));
                last.clone_from(&h.name);
            }
            for (q, v) in [(0.5, h.p50), (0.9, h.p90), (0.99, h.p99)] {
                let mut labels = h.labels.clone();
                labels.push(("quantile".to_string(), format!("{q}")));
                out.push_str(&format!("{}{} {}\n", h.name, render_labels(&labels), v));
            }
            out.push_str(&format!(
                "{}_count{} {}\n",
                h.name,
                render_labels(&h.labels),
                h.count
            ));
        }
        out
    }

    /// Sum of a counter across every label set (0 if absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Total sample count of a histogram across every label set.
    pub fn histogram_count(&self, name: &str) -> u64 {
        self.histograms
            .iter()
            .filter(|h| h.name == name)
            .map(|h| h.count)
            .sum()
    }

    /// Maximum value of a gauge across every label set (`None` if absent).
    pub fn gauge_max(&self, name: &str) -> Option<i64> {
        self.gauges
            .iter()
            .filter(|g| g.name == name)
            .map(|g| g.value)
            .max()
    }
}

/// The process-wide registry every subsystem reports into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Counter `name{labels}` in the global registry.
pub fn counter(name: &'static str, labels: &[(&str, &str)]) -> Counter {
    global().counter(name, labels)
}

/// Gauge `name{labels}` in the global registry.
pub fn gauge(name: &'static str, labels: &[(&str, &str)]) -> Gauge {
    global().gauge(name, labels)
}

/// Histogram `name{labels}` in the global registry.
pub fn histogram(name: &'static str, labels: &[(&str, &str)]) -> HistogramMetric {
    global().histogram(name, labels)
}

/// Snapshot of the global registry.
pub fn snapshot() -> MetricsSnapshot {
    global().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_get_or_create() {
        let r = Registry::new();
        let a = r.counter("x_total", &[("node", "n0")]);
        let b = r.counter("x_total", &[("node", "n0")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let other = r.counter("x_total", &[("node", "n1")]);
        other.inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter_total("x_total"), 4);
        assert_eq!(snap.counters.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        let r = Registry::new();
        r.counter("dual", &[]);
        r.gauge("dual", &[]);
    }

    #[test]
    fn gauge_set_max_is_high_water_mark() {
        let r = Registry::new();
        let g = r.gauge("queue_hwm", &[]);
        g.set_max(5);
        g.set_max(3);
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn snapshot_sorted_and_serializable() {
        let r = Registry::new();
        r.counter("b_total", &[]).inc();
        r.counter("a_total", &[("node", "z")]).inc();
        r.counter("a_total", &[("node", "a")]).inc();
        let h = r.histogram("lat_nanos", &[]);
        for v in [10, 20, 30, 40] {
            h.record(v);
        }
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a_total", "a_total", "b_total"]);
        assert_eq!(snap.counters[0].labels[0].1, "a");

        let json = serde_json::to_string_pretty(&snap).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(parsed.get("counters").is_some());

        let text = snap.to_prometheus_text();
        assert!(text.contains("a_total{node=\"a\"} 1"));
        assert!(text.contains("# TYPE lat_nanos summary"));
        assert!(text.contains("lat_nanos_count 4"));
    }

    #[test]
    fn hostile_label_values_escape_and_round_trip() {
        let r = Registry::new();
        // Backslash, double quote and newline — every character the
        // exposition format requires escaping, plus a benign unicode tail.
        let hostile = "a\\b\"c\nd→e";
        r.counter("hostile_total", &[("path", hostile)]).inc();
        let text = r.snapshot().to_prometheus_text();
        let line = text
            .lines()
            .find(|l| l.starts_with("hostile_total{"))
            .expect("sample line present");
        assert_eq!(
            line, "hostile_total{path=\"a\\\\b\\\"c\\nd→e\"} 1",
            "escaping must cover backslash, quote and newline"
        );
        // No label value may leak a raw newline or unescaped quote: every
        // emitted line must still be `name{labels} value`.
        for l in text.lines() {
            assert!(
                l.starts_with('#') || l.ends_with(" 1"),
                "malformed exposition line: {l:?}"
            );
        }
        // Round-trip: un-escaping the rendered value restores the original.
        let start = line.find('"').unwrap() + 1;
        let end = line.rfind('"').unwrap();
        let rendered = &line[start..end];
        let mut restored = String::new();
        let mut chars = rendered.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('\\') => restored.push('\\'),
                    Some('"') => restored.push('"'),
                    Some('n') => restored.push('\n'),
                    other => panic!("unknown escape \\{other:?}"),
                }
            } else {
                restored.push(c);
            }
        }
        assert_eq!(restored, hostile);
    }

    #[test]
    fn histogram_metric_records() {
        let r = Registry::new();
        let h = r.histogram("h_nanos", &[("node", "n")]);
        h.record(100);
        h.record(200);
        assert_eq!(h.count(), 2);
        let snap = r.snapshot();
        assert_eq!(snap.histogram_count("h_nanos"), 2);
        let s = &snap.histograms[0];
        assert!(s.min >= 100 && s.max >= 190 && s.mean > 0.0);
    }
}
