//! RPC-chain tracing.
//!
//! A thread-local trace context carries a trace id plus a span stack
//! through a request as
//! it fans out across simulated nodes. Each RPC entry point opens a
//! [`SpanScope`]; nested scopes become child spans, so a path resolve dumps
//! as an RPC tree whose per-hop count can be checked against the paper's
//! Table 1 RTT analysis (InfiniFS: one `get_entry` RPC per component;
//! Mantle: O(1) lookups off the index).
//!
//! The context is thread-local: the simulator executes a request's RPC legs
//! on the calling thread (latency is injected by sleeping), so a stack per
//! thread is exactly one trace deep. Finished traces land in a bounded ring
//! buffer ([`take_recent`]); sampling defaults to ~1% and is controlled by
//! [`set_sample_rate`] or the `MANTLE_TRACE_SAMPLE` environment variable.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use mantle_types::clock::{self, SimInstant, TimeStats};
use parking_lot::Mutex;
use serde::Serialize;

use crate::critpath::PhaseAttribution;
use crate::metrics::Counter;

/// Spans kept per trace before truncation; bounds worst-case memory for a
/// runaway recursive resolve.
const MAX_SPANS_PER_TRACE: usize = 4096;

/// Finished traces retained in the ring buffer.
const RING_CAPACITY: usize = 256;

/// What a span represents, for rendering and for counting RPC hops.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum SpanKind {
    /// The root operation (e.g. `lookup /a/b/c`).
    Op,
    /// One simulated RPC to a node (counts toward the RTT budget).
    Rpc,
    /// Local work worth showing in the tree (cache probe, index walk).
    Local,
}

/// One timed region inside a trace.
#[derive(Clone, Debug, Serialize)]
pub struct Span {
    /// Index of this span within the trace.
    pub id: u32,
    /// Index of the parent span, or `None` for the root.
    pub parent: Option<u32>,
    /// Operation label (e.g. `get_entry_batched`).
    pub op: String,
    /// Node that served the span (empty for client-local work).
    pub node: String,
    /// Kind of work this span represents.
    pub kind: SpanKind,
    /// Start offset from the trace start, in nanoseconds.
    pub start_nanos: u64,
    /// Simulated duration, in nanoseconds (wall-clock under
    /// `MANTLE_WALL_CLOCK=1`).
    pub dur_nanos: u64,
    /// Time spent waiting for a service permit (queueing), in nanoseconds.
    pub queue_nanos: u64,
    /// Simulated latency injected by the SimNode, in nanoseconds.
    pub injected_nanos: u64,
    /// Per-phase ledger delta across the span (inclusive of children; see
    /// [`crate::critpath::per_node`] for exclusive attribution).
    pub phases: PhaseAttribution,
}

/// A finished trace: the span tree of one operation.
#[derive(Clone, Debug, Serialize)]
pub struct Trace {
    /// Unique id assigned at trace start.
    pub trace_id: u64,
    /// Root operation label.
    pub op: String,
    /// Spans in creation order; parents precede children.
    pub spans: Vec<Span>,
    /// Whether spans were dropped after the per-trace cap.
    pub truncated: bool,
    /// Per-phase attribution of the whole operation (the thread ledger's
    /// delta from trace start to commit). Under the virtual clock its
    /// total equals [`Trace::total_nanos`] exactly.
    pub phases: PhaseAttribution,
}

impl Trace {
    /// Number of RPC spans — the metric the fidelity tests compare against
    /// the paper's RTT counts.
    pub fn rpc_count(&self) -> usize {
        self.spans
            .iter()
            .filter(|s| s.kind == SpanKind::Rpc)
            .count()
    }

    /// Total simulated duration (root span duration), in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.spans.first().map_or(0, |s| s.dur_nanos)
    }

    /// The distinct serving nodes touched by this trace, sorted.
    pub fn nodes(&self) -> Vec<String> {
        let mut nodes: Vec<String> = self
            .spans
            .iter()
            .filter(|s| !s.node.is_empty())
            .map(|s| s.node.clone())
            .collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }

    /// Renders the span tree, one line per span:
    ///
    /// ```text
    /// lookup /a/b (trace 42, 3 rpcs, 612.0us)
    /// └─ resolve_index [index0] rpc 200.1us (queue 0ns, injected 200.0us)
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} (trace {}, {} rpcs, {})\n",
            self.op,
            self.trace_id,
            self.rpc_count(),
            fmt_nanos(self.total_nanos())
        );
        // Children of span 0 render at depth 1, their children deeper.
        for (i, span) in self.spans.iter().enumerate().skip(1) {
            let depth = self.depth_of(i as u32);
            let kind = match span.kind {
                SpanKind::Op => "op",
                SpanKind::Rpc => "rpc",
                SpanKind::Local => "local",
            };
            let node = if span.node.is_empty() {
                String::new()
            } else {
                format!(" [{}]", span.node)
            };
            out.push_str(&format!(
                "{}└─ {}{} {} {} (queue {}, injected {})\n",
                "   ".repeat(depth.saturating_sub(1)),
                span.op,
                node,
                kind,
                fmt_nanos(span.dur_nanos),
                fmt_nanos(span.queue_nanos),
                fmt_nanos(span.injected_nanos),
            ));
        }
        if self.truncated {
            out.push_str("… trace truncated\n");
        }
        if !self.phases.is_empty() {
            out.push_str(&format!("critical path: {}\n", self.phases.render()));
        }
        out
    }

    fn depth_of(&self, mut id: u32) -> usize {
        let mut depth = 0;
        while let Some(parent) = self.spans.get(id as usize).and_then(|s| s.parent) {
            depth += 1;
            id = parent;
        }
        depth
    }
}

fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.1}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}us", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

/// In-flight trace state for the current thread.
struct ActiveTrace {
    trace_id: u64,
    op: String,
    epoch: SimInstant,
    ledger0: TimeStats,
    spans: Vec<Span>,
    stack: Vec<u32>,
    truncated: bool,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

struct Collector {
    next_trace_id: AtomicU64,
    /// Sampling interval: a trace starts when `started % interval == 0`.
    /// `0` disables sampling entirely.
    interval: AtomicU64,
    started: AtomicU64,
    ring: Mutex<VecDeque<Trace>>,
    /// Traces evicted from the full ring before anyone read them.
    dropped: AtomicU64,
    /// `obs_traces_dropped_total` — the same eviction count, exported.
    dropped_metric: Counter,
}

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| {
        let rate = std::env::var("MANTLE_TRACE_SAMPLE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(0.01);
        Collector {
            next_trace_id: AtomicU64::new(1),
            interval: AtomicU64::new(rate_to_interval(rate)),
            started: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(RING_CAPACITY)),
            dropped: AtomicU64::new(0),
            dropped_metric: crate::metrics::counter("obs_traces_dropped_total", &[]),
        }
    })
}

fn rate_to_interval(rate: f64) -> u64 {
    if rate <= 0.0 {
        0
    } else if rate >= 1.0 {
        1
    } else {
        (1.0 / rate).round() as u64
    }
}

/// Sets the sampling rate (`0.0` = off, `1.0` = every operation). The
/// default is 1%, or whatever `MANTLE_TRACE_SAMPLE` specified at startup.
pub fn set_sample_rate(rate: f64) {
    collector()
        .interval
        .store(rate_to_interval(rate), Ordering::Relaxed);
}

/// Starts a trace for `op` if the sampler selects this operation and no
/// trace is already active on this thread. Hold the returned guard for the
/// duration of the operation; the trace is committed when it drops.
pub fn start(op: &str) -> Option<TraceGuard> {
    let c = collector();
    let interval = c.interval.load(Ordering::Relaxed);
    if interval == 0 {
        return None;
    }
    let n = c.started.fetch_add(1, Ordering::Relaxed);
    if !n.is_multiple_of(interval) {
        return None;
    }
    start_inner(op, true)
}

/// Starts a trace unconditionally (CLI `trace` command, tests). Returns
/// `None` only if a trace is already active on this thread.
pub fn start_forced(op: &str) -> Option<TraceGuard> {
    start_inner(op, true)
}

/// Starts a trace whose commit does **not** land in the shared ring — the
/// caller owns the finished [`Trace`] (the flight recorder's always-on
/// capture path, which decides *after* the fact whether the trace is worth
/// keeping). Returns `None` if a trace is already active on this thread.
pub fn start_detached(op: &str) -> Option<TraceGuard> {
    start_inner(op, false)
}

/// Runs the sampling decision without starting a trace: true for the same
/// ~1-in-interval operations [`start`] would have selected. The flight
/// recorder uses this to keep feeding the sampled ring while its detached
/// capture owns the thread's trace slot.
pub fn sampler_selects() -> bool {
    let c = collector();
    let interval = c.interval.load(Ordering::Relaxed);
    if interval == 0 {
        return false;
    }
    c.started
        .fetch_add(1, Ordering::Relaxed)
        .is_multiple_of(interval)
}

/// Pushes an already-finished trace into the shared ring (with the same
/// eviction accounting as a sampled commit).
pub fn push_to_ring(trace: Trace) {
    ring_push(trace);
}

fn start_inner(op: &str, ring_on_commit: bool) -> Option<TraceGuard> {
    ACTIVE.with(|cell| {
        let mut active = cell.borrow_mut();
        if active.is_some() {
            return None;
        }
        let trace_id = collector().next_trace_id.fetch_add(1, Ordering::Relaxed);
        let mut trace = ActiveTrace {
            trace_id,
            op: op.to_string(),
            epoch: clock::now(),
            ledger0: clock::thread_time_stats(),
            spans: Vec::with_capacity(16),
            stack: Vec::with_capacity(8),
            truncated: false,
        };
        trace.spans.push(Span {
            id: 0,
            parent: None,
            op: op.to_string(),
            node: String::new(),
            kind: SpanKind::Op,
            start_nanos: 0,
            dur_nanos: 0,
            queue_nanos: 0,
            injected_nanos: 0,
            phases: PhaseAttribution::default(),
        });
        trace.stack.push(0);
        *active = Some(trace);
        Some(TraceGuard { ring_on_commit })
    })
}

/// Whether a trace is active on this thread. Instrumentation sites use
/// this to skip span bookkeeping entirely on the untraced fast path.
#[inline]
pub fn is_active() -> bool {
    ACTIVE.with(|cell| cell.borrow().is_some())
}

/// RAII handle for an active trace. Dropping it (or calling
/// [`TraceGuard::finish`]) closes the root span and commits the trace —
/// into the shared ring for sampled/forced traces, or only to the caller
/// for [`start_detached`] traces.
pub struct TraceGuard {
    ring_on_commit: bool,
}

impl TraceGuard {
    /// Ends the trace and returns it (sampled/forced guards also leave a
    /// copy in the ring buffer), for callers that want to render it
    /// immediately.
    pub fn finish(self) -> Trace {
        let ring = self.ring_on_commit;
        std::mem::forget(self);
        commit(ring).expect("trace active while guard held")
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        commit(self.ring_on_commit);
    }
}

fn commit(ring_on_commit: bool) -> Option<Trace> {
    let finished = ACTIVE.with(|cell| cell.borrow_mut().take())?;
    let elapsed = finished.epoch.elapsed().as_nanos() as u64;
    let phases = PhaseAttribution::from_delta(&finished.ledger0, &clock::thread_time_stats());
    let mut spans = finished.spans;
    if let Some(root) = spans.first_mut() {
        root.dur_nanos = elapsed;
        root.phases = phases;
    }
    let trace = Trace {
        trace_id: finished.trace_id,
        op: finished.op,
        spans,
        truncated: finished.truncated,
        phases,
    };
    if ring_on_commit {
        ring_push(trace.clone());
    }
    Some(trace)
}

fn ring_push(trace: Trace) {
    let c = collector();
    let mut ring = c.ring.lock();
    if ring.len() == RING_CAPACITY {
        ring.pop_front();
        c.dropped.fetch_add(1, Ordering::Relaxed);
        c.dropped_metric.inc();
    }
    ring.push_back(trace);
}

/// Drains up to `n` of the most recent finished traces, newest last.
/// Anything older than the last `n` is discarded (and **not** counted as
/// dropped — the caller chose to skip it); use [`peek_recent`] for a
/// non-destructive view.
pub fn take_recent(n: usize) -> Vec<Trace> {
    let mut ring = collector().ring.lock();
    let skip = ring.len().saturating_sub(n);
    ring.drain(..).skip(skip).collect()
}

/// Clones up to `n` of the most recent finished traces, newest last,
/// leaving the ring intact (the `/traces/recent` endpoint's read path).
pub fn peek_recent(n: usize) -> Vec<Trace> {
    let ring = collector().ring.lock();
    let skip = ring.len().saturating_sub(n);
    ring.iter().skip(skip).cloned().collect()
}

/// Traces evicted unread from the full ring since process start (also
/// exported as `obs_traces_dropped_total`).
pub fn dropped_total() -> u64 {
    collector().dropped.load(Ordering::Relaxed)
}

/// Opens a span under the current trace. Returns `None` (with zero cost
/// beyond a thread-local read) when no trace is active.
pub fn span(op: &str, node: &str, kind: SpanKind) -> Option<SpanScope> {
    ACTIVE.with(|cell| {
        let mut borrow = cell.borrow_mut();
        let active = borrow.as_mut()?;
        if active.spans.len() >= MAX_SPANS_PER_TRACE {
            active.truncated = true;
            return None;
        }
        let id = active.spans.len() as u32;
        let parent = active.stack.last().copied();
        let start_nanos = active.epoch.elapsed().as_nanos() as u64;
        active.spans.push(Span {
            id,
            parent,
            op: op.to_string(),
            node: node.to_string(),
            kind,
            start_nanos,
            dur_nanos: 0,
            queue_nanos: 0,
            injected_nanos: 0,
            phases: PhaseAttribution::default(),
        });
        active.stack.push(id);
        Some(SpanScope {
            id,
            started: clock::now(),
            ledger0: clock::thread_time_stats(),
        })
    })
}

/// Convenience wrapper: an RPC span served by `node`.
pub fn rpc_span(op: &str, node: &str) -> Option<SpanScope> {
    span(op, node, SpanKind::Rpc)
}

/// Adds queue-wait time to the innermost open span, if any. Lets deep
/// plumbing (permit acquisition) annotate the span its caller opened.
pub fn note_queue_on_current(nanos: u64) {
    note_on_current(|span| span.queue_nanos += nanos);
}

/// Adds injected simulated latency to the innermost open span, if any.
pub fn note_injected_on_current(nanos: u64) {
    note_on_current(|span| span.injected_nanos += nanos);
}

fn note_on_current(f: impl FnOnce(&mut Span)) {
    ACTIVE.with(|cell| {
        if let Some(active) = cell.borrow_mut().as_mut() {
            if let Some(&top) = active.stack.last() {
                if let Some(span) = active.spans.get_mut(top as usize) {
                    f(span);
                }
            }
        }
    });
}

/// RAII handle for an open span; closes the span on drop.
pub struct SpanScope {
    id: u32,
    started: SimInstant,
    ledger0: TimeStats,
}

impl SpanScope {
    /// Records time this span spent queued waiting for a service permit.
    pub fn note_queue_nanos(&self, nanos: u64) {
        self.note(|span| span.queue_nanos += nanos);
    }

    /// Records simulated latency injected into this span.
    pub fn note_injected_nanos(&self, nanos: u64) {
        self.note(|span| span.injected_nanos += nanos);
    }

    fn note(&self, f: impl FnOnce(&mut Span)) {
        ACTIVE.with(|cell| {
            if let Some(active) = cell.borrow_mut().as_mut() {
                if let Some(span) = active.spans.get_mut(self.id as usize) {
                    f(span);
                }
            }
        });
    }
}

impl Drop for SpanScope {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed().as_nanos() as u64;
        let phases = PhaseAttribution::from_delta(&self.ledger0, &clock::thread_time_stats());
        ACTIVE.with(|cell| {
            if let Some(active) = cell.borrow_mut().as_mut() {
                if let Some(span) = active.spans.get_mut(self.id as usize) {
                    span.dur_nanos = elapsed;
                    span.phases = phases;
                }
                // Pop back to this span's parent; tolerate out-of-order
                // drops by popping until we remove our own id.
                while let Some(top) = active.stack.pop() {
                    if top == self.id {
                        break;
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_commit() {
        set_sample_rate(0.0);
        assert!(start("nope").is_none(), "sampling off blocks start()");

        let guard = start_forced("lookup /a/b").expect("forced trace");
        {
            let outer = rpc_span("resolve", "index0").unwrap();
            outer.note_injected_nanos(200_000);
            {
                let _inner = span("cache_probe", "", SpanKind::Local).unwrap();
            }
        }
        {
            let s = rpc_span("get_attr", "tafdb1").unwrap();
            s.note_queue_nanos(5_000);
        }
        let trace = guard.finish();
        assert_eq!(trace.rpc_count(), 2);
        assert_eq!(trace.spans.len(), 4);
        assert_eq!(trace.spans[1].parent, Some(0));
        assert_eq!(trace.spans[2].parent, Some(1));
        assert_eq!(trace.spans[3].parent, Some(0));
        assert_eq!(trace.spans[1].injected_nanos, 200_000);
        assert_eq!(trace.spans[3].queue_nanos, 5_000);
        assert!(!trace.truncated);

        let rendered = trace.render();
        assert!(rendered.contains("2 rpcs"));
        assert!(rendered.contains("[index0]"));
        assert!(rendered.contains("cache_probe"));

        let recent = take_recent(8);
        assert!(recent.iter().any(|t| t.trace_id == trace.trace_id));
    }

    #[test]
    fn no_active_trace_means_no_spans() {
        assert!(!is_active());
        assert!(span("x", "", SpanKind::Local).is_none());
    }

    #[test]
    fn only_one_trace_per_thread() {
        let g = start_forced("outer").unwrap();
        assert!(start_forced("inner").is_none());
        drop(g);
        assert!(!is_active());
    }

    #[test]
    fn sampling_interval_selects_subset() {
        // Rate 0.5 → interval 2 → roughly half of starts are selected.
        set_sample_rate(0.5);
        let mut hits = 0;
        for _ in 0..10 {
            if let Some(g) = start("sampled") {
                hits += 1;
                drop(g);
            }
        }
        set_sample_rate(0.0);
        assert!(
            (4..=6).contains(&hits),
            "expected ~half sampled, got {hits}"
        );
    }

    #[test]
    fn truncation_sets_flag() {
        let g = start_forced("deep").unwrap();
        for _ in 0..MAX_SPANS_PER_TRACE + 10 {
            let _s = span("leg", "n", SpanKind::Rpc);
        }
        let t = g.finish();
        assert!(t.truncated);
        assert!(t.spans.len() <= MAX_SPANS_PER_TRACE);
    }

    #[test]
    fn trace_serializes_to_json() {
        let g = start_forced("ser").unwrap();
        drop(span("leg", "n0", SpanKind::Rpc));
        let t = g.finish();
        let text = serde_json::to_string(&t).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v.get("op").and_then(serde_json::Value::as_str), Some("ser"));
        assert_eq!(
            v.get("spans")
                .and_then(serde_json::Value::as_array)
                .map(<[_]>::len),
            Some(2)
        );
    }
}
