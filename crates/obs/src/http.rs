//! A minimal, dependency-free scrape endpoint for live observability.
//!
//! Hand-rolled on `std::net::TcpListener` — the repo's no-new-deps rule
//! rules out hyper et al., and a scrape server needs exactly one request
//! shape (`GET <path>`). Routes:
//!
//! * `/metrics` — the global registry as Prometheus exposition text.
//! * `/slow` (or `/slow?n=N`) — recent force-captured [`SlowOp`] events
//!   from the global flight recorder, as JSON.
//! * `/traces/recent` — recent sampled traces from the trace ring, JSON
//!   (non-draining, so scraping does not steal traces from the CLI).
//! * `/attribution` — per-`(system, op)` explain reports plus cumulative
//!   per-node phase attribution, JSON.
//!
//! Startup is gated by `MANTLE_OBS_ADDR` (e.g.
//! `MANTLE_OBS_ADDR=127.0.0.1:9925`); see [`serve_if_configured`]. Tests
//! bind port 0 via [`serve`] and read the chosen port from
//! [`ObsServer::local_addr`].

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use serde::Serialize;

use crate::flight::{self, SlowOp};
use crate::trace;

/// Default number of items `/slow` and `/traces/recent` return when the
/// query string does not say otherwise.
const DEFAULT_RECENT: usize = 32;

/// Cap on `?n=` so a hostile scrape cannot ask for the universe.
const MAX_RECENT: usize = 1024;

/// A running scrape server. Dropping it stops the acceptor thread and
/// releases the port.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ObsServer {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Poke the acceptor loose from accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9925`; port 0 picks a free port) and
/// serves scrape requests on a background thread until the returned
/// [`ObsServer`] drops.
pub fn serve(addr: &str) -> std::io::Result<ObsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("mantle-obs-http".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                if let Ok(stream) = conn {
                    // Scrapes are tiny; serve inline on the acceptor and
                    // never hang on a stalled peer.
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                    let _ = handle_connection(stream);
                }
            }
        })?;
    Ok(ObsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

/// Starts the scrape server if `MANTLE_OBS_ADDR` is set. Bind failures are
/// reported to stderr and swallowed — observability must never take down
/// the workload it observes.
pub fn serve_if_configured() -> Option<ObsServer> {
    let addr = std::env::var("MANTLE_OBS_ADDR").ok()?;
    if addr.is_empty() {
        return None;
    }
    match serve(&addr) {
        Ok(server) => {
            eprintln!(
                "mantle-obs: serving /metrics on http://{}",
                server.local_addr()
            );
            Some(server)
        }
        Err(e) => {
            eprintln!("mantle-obs: failed to bind {addr}: {e}");
            None
        }
    }
}

fn handle_connection(stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so the peer's write isn't reset mid-request.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut stream = reader.into_inner();

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/" => respond(
            &mut stream,
            200,
            "text/plain; charset=utf-8",
            "mantle-obs: /metrics /slow /traces/recent /attribution\n",
        ),
        "/metrics" => {
            let body = crate::metrics::snapshot().to_prometheus_text();
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/slow" => {
            let events = flight::global().slow_recent(recent_limit(query));
            respond_json(
                &mut stream,
                &SlowPage {
                    dropped_total: flight::global().slow_dropped_total(),
                    captured_total: flight::global().slow_captured_total(),
                    events,
                },
            )
        }
        "/traces/recent" => {
            let traces = trace::peek_recent(recent_limit(query));
            respond_json(
                &mut stream,
                &TracesPage {
                    dropped_total: trace::dropped_total(),
                    traces,
                },
            )
        }
        "/attribution" => {
            let rec = flight::global();
            respond_json(
                &mut stream,
                &AttributionPage {
                    ops: rec.explain_all(),
                    nodes: rec
                        .node_phases()
                        .into_iter()
                        .map(|(node, phases)| NodeAttribution { node, phases })
                        .collect(),
                },
            )
        }
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

#[derive(Serialize)]
struct SlowPage {
    dropped_total: u64,
    captured_total: u64,
    events: Vec<SlowOp>,
}

#[derive(Serialize)]
struct TracesPage {
    dropped_total: u64,
    traces: Vec<trace::Trace>,
}

#[derive(Serialize)]
struct NodeAttribution {
    node: String,
    phases: crate::critpath::PhaseAttribution,
}

#[derive(Serialize)]
struct AttributionPage {
    ops: Vec<flight::ExplainReport>,
    nodes: Vec<NodeAttribution>,
}

/// Parses `n=<count>` out of a query string, clamped to [`MAX_RECENT`].
fn recent_limit(query: &str) -> usize {
    query
        .split('&')
        .find_map(|kv| kv.strip_prefix("n="))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEFAULT_RECENT)
        .min(MAX_RECENT)
}

fn respond_json<T: Serialize>(stream: &mut TcpStream, value: &T) -> std::io::Result<()> {
    match serde_json::to_string_pretty(value) {
        Ok(body) => respond(stream, 200, "application/json", &body),
        Err(e) => respond(stream, 500, "text/plain", &format!("serialize: {e}\n")),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Issues a blocking `GET path` against `addr` and returns the response
/// body (status must be 200). Test/CI helper — the CLI and tests use it to
/// scrape a live endpoint without a real HTTP client in the tree.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: mantle\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header break"))?;
    let status_line = head.lines().next().unwrap_or("");
    if !status_line.contains(" 200 ") {
        return Err(std::io::Error::other(format!("{path}: {status_line}")));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_all_routes_on_an_ephemeral_port() {
        let server = serve("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        crate::metrics::counter("http_test_total", &[("route", "/metrics")]).inc();
        let metrics = get(addr, "/metrics").expect("/metrics");
        assert!(metrics.contains("# TYPE http_test_total counter"));
        assert!(metrics.contains("http_test_total{route=\"/metrics\"}"));

        let slow = get(addr, "/slow?n=4").expect("/slow");
        let v: serde_json::Value = serde_json::from_str(&slow).expect("slow JSON");
        assert!(v
            .get("events")
            .and_then(serde_json::Value::as_array)
            .is_some());

        let traces = get(addr, "/traces/recent").expect("/traces/recent");
        let v: serde_json::Value = serde_json::from_str(&traces).expect("traces JSON");
        assert!(v
            .get("traces")
            .and_then(serde_json::Value::as_array)
            .is_some());

        let attr = get(addr, "/attribution").expect("/attribution");
        let v: serde_json::Value = serde_json::from_str(&attr).expect("attribution JSON");
        assert!(v.get("ops").is_some() && v.get("nodes").is_some());

        assert!(get(addr, "/nope").is_err(), "unknown route 404s");
        let index = get(addr, "/").expect("index");
        assert!(index.contains("/metrics"));
    }

    #[test]
    fn recent_limit_parses_and_clamps() {
        assert_eq!(recent_limit(""), DEFAULT_RECENT);
        assert_eq!(recent_limit("n=7"), 7);
        assert_eq!(recent_limit("x=1&n=9"), 9);
        assert_eq!(recent_limit("n=999999"), MAX_RECENT);
        assert_eq!(recent_limit("n=bogus"), DEFAULT_RECENT);
    }
}
