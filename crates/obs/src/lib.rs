//! # mantle-obs — cluster-wide observability
//!
//! Two halves, wired through every subsystem in the workspace:
//!
//! * [`metrics`] — a sharded registry of named counters, gauges and
//!   histograms with Prometheus-style labels (`node="tafdb3"`), snapshot
//!   export as Prometheus text or JSON. Subsystems grab handles once at
//!   construction; the hot path is one atomic op.
//! * [`trace`] — RPC-chain tracing. A thread-local span stack follows a
//!   request across SimNode RPC hops; finished traces
//!   land in a bounded ring buffer and render as a tree whose RPC count can
//!   be checked against the paper's Table 1 RTT analysis.
//!
//! On top of those sit the v2 pieces:
//!
//! * [`critpath`] — critical-path attribution: folds the per-thread
//!   [`TimeCategory`](mantle_types::clock::TimeCategory) ledger into
//!   per-phase breakdowns whose totals equal end-to-end virtual latency
//!   exactly, per trace and per node.
//! * [`flight`] — the always-on flight recorder: ops slower than a
//!   per-op-type adaptive threshold (trailing p99 × k) are force-captured
//!   into a bounded slow-op ring with their full trace, shard set and
//!   fault/retry annotations.
//! * [`http`] — a dependency-free scrape endpoint (`/metrics`, `/slow`,
//!   `/traces/recent`, `/attribution`) gated by `MANTLE_OBS_ADDR`.
//!
//! See DESIGN.md §Observability for the metric taxonomy and trace format.

#![warn(missing_docs)]

pub mod critpath;
pub mod flight;
pub mod http;
pub mod metrics;
pub mod trace;

pub use critpath::PhaseAttribution;
pub use flight::{FlightConfig, FlightRecorder, SlowOp};
pub use metrics::{
    counter, gauge, histogram, snapshot, Counter, Gauge, HistogramMetric, MetricsSnapshot, Registry,
};
pub use trace::{
    rpc_span, set_sample_rate, span, start, start_forced, take_recent, Span, SpanKind, SpanScope,
    Trace, TraceGuard,
};
