//! # mantle-obs — cluster-wide observability
//!
//! Two halves, wired through every subsystem in the workspace:
//!
//! * [`metrics`] — a sharded registry of named counters, gauges and
//!   histograms with Prometheus-style labels (`node="tafdb3"`), snapshot
//!   export as Prometheus text or JSON. Subsystems grab handles once at
//!   construction; the hot path is one atomic op.
//! * [`trace`] — RPC-chain tracing. A thread-local span stack follows a
//!   request across SimNode RPC hops; finished traces
//!   land in a bounded ring buffer and render as a tree whose RPC count can
//!   be checked against the paper's Table 1 RTT analysis.
//!
//! See DESIGN.md §Observability for the metric taxonomy and trace format.

#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{
    counter, gauge, histogram, snapshot, Counter, Gauge, HistogramMetric, MetricsSnapshot, Registry,
};
pub use trace::{
    rpc_span, set_sample_rate, span, start, start_forced, take_recent, Span, SpanKind, SpanScope,
    Trace, TraceGuard,
};
