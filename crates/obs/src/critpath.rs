//! Critical-path attribution: where an operation's time actually went.
//!
//! Every advance of the simulated timeline passes through
//! [`mantle_types::clock::sleep_as`] / `fold_real`, each of which charges a
//! [`TimeCategory`] in the per-thread ledger. A [`PhaseAttribution`] is the
//! ledger *delta* across a region of interest — an operation, a trace, a
//! single span — so under the virtual clock the per-phase nanoseconds sum
//! **exactly** to the region's end-to-end latency (the property the
//! acceptance tests pin to within 1%).
//!
//! Two entry points:
//! * [`PhaseAttribution::from_delta`] — fold two ledger snapshots.
//! * [`per_node`] — fold a finished [`Trace`] into *exclusive* per-node
//!   attributions (each span's delta minus its children's), which is what
//!   the placement controller consumes per shard.

use mantle_types::clock::{TimeCategory, TimeStats};
use serde::{Serialize, Value};

use crate::trace::Trace;

/// Number of attribution phases (one per [`TimeCategory`]).
pub const N_PHASES: usize = TimeCategory::ALL.len();

/// Per-phase `(count, nanos)` breakdown of a region of simulated time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseAttribution {
    counts: [u64; N_PHASES],
    nanos: [u64; N_PHASES],
}

impl PhaseAttribution {
    /// The ledger growth between two snapshots of one thread's
    /// [`TimeStats`] (`before` taken at region entry, `after` at exit).
    pub fn from_delta(before: &TimeStats, after: &TimeStats) -> Self {
        let d = after.delta_since(before);
        let mut out = PhaseAttribution::default();
        for (i, cat) in TimeCategory::ALL.iter().enumerate() {
            out.counts[i] = d.count(*cat);
            out.nanos[i] = d.nanos(*cat);
        }
        out
    }

    /// Charges recorded under `cat`.
    pub fn count(&self, cat: TimeCategory) -> u64 {
        self.counts[TimeCategory::ALL.iter().position(|c| *c == cat).unwrap()]
    }

    /// Nanoseconds attributed to `cat`.
    pub fn nanos(&self, cat: TimeCategory) -> u64 {
        self.nanos[TimeCategory::ALL.iter().position(|c| *c == cat).unwrap()]
    }

    /// Total nanoseconds across all phases. Under the virtual clock this
    /// equals the region's end-to-end latency exactly.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// True when nothing was charged.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|c| *c == 0) && self.nanos.iter().all(|n| *n == 0)
    }

    /// Folds another attribution in (aggregation across ops / windows).
    pub fn add(&mut self, other: &PhaseAttribution) {
        for i in 0..N_PHASES {
            self.counts[i] += other.counts[i];
            self.nanos[i] += other.nanos[i];
        }
    }

    /// `self - other`, clamped at zero per phase (used to subtract child
    /// spans from a parent for exclusive attribution).
    pub fn saturating_sub(&self, other: &PhaseAttribution) -> PhaseAttribution {
        let mut out = *self;
        for i in 0..N_PHASES {
            out.counts[i] = out.counts[i].saturating_sub(other.counts[i]);
            out.nanos[i] = out.nanos[i].saturating_sub(other.nanos[i]);
        }
        out
    }

    /// Phases sorted by time spent, descending, zero phases omitted.
    pub fn ranked(&self) -> Vec<(TimeCategory, u64)> {
        let mut v: Vec<(TimeCategory, u64)> = TimeCategory::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| self.nanos[*i] > 0)
            .map(|(i, c)| (*c, self.nanos[i]))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.label().cmp(b.0.label())));
        v
    }

    /// Human summary: `"62% fsync, 21% queue, 17% rtt"` (phases under 1%
    /// folded into a trailing `…`). Empty attribution renders as `"idle"`.
    pub fn render(&self) -> String {
        let total = self.total_nanos();
        if total == 0 {
            return "idle".to_string();
        }
        let mut parts = Vec::new();
        let mut folded = 0u64;
        for (cat, nanos) in self.ranked() {
            let pct = nanos as f64 * 100.0 / total as f64;
            if pct >= 1.0 {
                parts.push(format!("{:.0}% {}", pct, cat.label()));
            } else {
                folded += nanos;
            }
        }
        if folded > 0 {
            parts.push("…".to_string());
        }
        parts.join(", ")
    }

    /// Canonical machine form, `phase=nanos/count` pairs in ledger order
    /// with zero phases omitted — byte-stable across identical seeded runs
    /// (the determinism tests compare these strings).
    pub fn canonical(&self) -> String {
        let mut parts = Vec::new();
        for (i, cat) in TimeCategory::ALL.iter().enumerate() {
            if self.counts[i] > 0 || self.nanos[i] > 0 {
                parts.push(format!(
                    "{}={}/{}",
                    cat.label(),
                    self.nanos[i],
                    self.counts[i]
                ));
            }
        }
        parts.join(" ")
    }
}

impl Serialize for PhaseAttribution {
    /// Serializes as a map `label → {nanos, count}`, zero phases omitted.
    fn to_json(&self) -> Value {
        let mut pairs = Vec::new();
        for (i, cat) in TimeCategory::ALL.iter().enumerate() {
            if self.counts[i] > 0 || self.nanos[i] > 0 {
                pairs.push((
                    cat.label().to_string(),
                    Value::Object(vec![
                        ("nanos".to_string(), Value::U64(self.nanos[i])),
                        ("count".to_string(), Value::U64(self.counts[i])),
                    ]),
                ));
            }
        }
        Value::Object(pairs)
    }
}

/// Folds a finished trace into *exclusive* per-node attributions: each
/// span's ledger delta minus its direct children's, grouped by serving
/// node and sorted by node name. Client-local work (spans with an empty
/// node, including the root) appears under `"client"`.
pub fn per_node(trace: &Trace) -> Vec<(String, PhaseAttribution)> {
    let spans = &trace.spans;
    // Sum of children's (inclusive) attributions per parent.
    let mut child_sums = vec![PhaseAttribution::default(); spans.len()];
    for span in spans.iter() {
        if let Some(p) = span.parent {
            child_sums[p as usize].add(&span.phases);
        }
    }
    let mut by_node: std::collections::BTreeMap<String, PhaseAttribution> =
        std::collections::BTreeMap::new();
    for (i, span) in spans.iter().enumerate() {
        let exclusive = span.phases.saturating_sub(&child_sums[i]);
        if exclusive.is_empty() {
            continue;
        }
        let node = if span.node.is_empty() {
            "client".to_string()
        } else {
            span.node.clone()
        };
        by_node.entry(node).or_default().add(&exclusive);
    }
    by_node.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantle_types::clock::{self};
    use std::time::Duration;

    #[test]
    fn delta_attribution_sums_to_elapsed_virtual_time() {
        let before = clock::thread_time_stats();
        let t0 = clock::now();
        clock::sleep_as(TimeCategory::Rtt, Duration::from_micros(200));
        clock::sleep_as(TimeCategory::Fsync, Duration::from_micros(100));
        clock::sleep_as(TimeCategory::Rtt, Duration::from_micros(200));
        let attr = PhaseAttribution::from_delta(&before, &clock::thread_time_stats());
        assert_eq!(attr.count(TimeCategory::Rtt), 2);
        assert_eq!(attr.nanos(TimeCategory::Rtt), 400_000);
        assert_eq!(attr.nanos(TimeCategory::Fsync), 100_000);
        if clock::is_virtual() {
            assert_eq!(attr.total_nanos(), t0.elapsed().as_nanos() as u64);
        }
        assert!(attr.render().contains("80% rtt"), "{}", attr.render());
        assert_eq!(attr.canonical(), "rtt=400000/2 fsync=100000/1");
    }

    #[test]
    fn add_sub_and_ranked() {
        let mut a = PhaseAttribution::default();
        let mut b = PhaseAttribution::default();
        a.counts[0] = 1;
        a.nanos[0] = 100;
        b.counts[0] = 2;
        b.nanos[0] = 50;
        b.counts[1] = 1;
        b.nanos[1] = 500;
        a.add(&b);
        assert_eq!(a.nanos(TimeCategory::Rtt), 150);
        assert_eq!(a.ranked()[0].0, TimeCategory::Fsync);
        let c = a.saturating_sub(&b);
        assert_eq!(c.nanos(TimeCategory::Rtt), 100);
        assert_eq!(c.nanos(TimeCategory::Fsync), 0);
        assert!(PhaseAttribution::default().is_empty());
        assert_eq!(PhaseAttribution::default().render(), "idle");
    }

    #[test]
    fn serializes_as_labelled_map() {
        let mut a = PhaseAttribution::default();
        a.counts[1] = 3;
        a.nanos[1] = 900;
        let v = serde_json::to_value(a).unwrap();
        let fsync = v.get("fsync").expect("fsync present");
        assert_eq!(fsync.get("nanos").and_then(Value::as_u64), Some(900));
        assert_eq!(fsync.get("count").and_then(Value::as_u64), Some(3));
        assert!(v.get("rtt").is_none(), "zero phases omitted");
    }
}
