//! Always-on flight recorder: force-capture of anomalously slow operations.
//!
//! Sampled tracing ([`crate::trace`]) answers "what does a *typical* op look
//! like"; it is useless for the op that mattered — the p99.9 outlier that a
//! retry storm or an fsync stall produced — because at a 1% sample rate the
//! outlier is almost never selected. The flight recorder closes that gap:
//! every operation wrapped in [`op_scope`] runs with a detached trace, and
//! when the op's end-to-end latency exceeds a per-`(system, op)` adaptive
//! threshold (trailing p99 × k, see [`FlightConfig`]) the full trace is
//! force-captured into a bounded slow-op ring together with a structured
//! [`SlowOp`] event (path depth, shard set, retry/fault annotations from the
//! capture points, per-phase attribution).
//!
//! Everything the recorder emits is a deterministic function of the seeded
//! workload under the virtual clock: latencies are virtual, thresholds are
//! recomputed at fixed op counts, and [`SlowOp::log_line`] deliberately
//! excludes nondeterministic identifiers (trace ids), so identical seeds
//! produce byte-identical slow-op logs (pinned by tests).
//!
//! The recorder also folds every captured trace into *exclusive per-node*
//! attributions ([`crate::critpath::per_node`]); the placement controller
//! reads these via [`FlightRecorder::node_phases`] to see not just *that* a
//! shard is hot but *which phase* (fsync vs queueing vs injected faults) is
//! burning its time.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use mantle_types::clock::{self, SimInstant, TimeCategory, TimeStats};
use mantle_types::hist::Histogram;
use parking_lot::Mutex;
use serde::Serialize;

use crate::critpath::{self, PhaseAttribution, N_PHASES};
use crate::metrics::{Counter, HistogramMetric};
use crate::trace::{self, Trace, TraceGuard};

/// Tuning knobs for a [`FlightRecorder`]. [`FlightConfig::from_env`] reads
/// the `MANTLE_SLOW_*` environment variables; [`Default`] is the same with
/// an empty environment.
#[derive(Clone, Debug)]
pub struct FlightConfig {
    /// Slow-op events retained in the bounded ring (oldest evicted, with
    /// drop accounting).
    pub slow_capacity: usize,
    /// `k` in the adaptive threshold `trailing_p99 × k`
    /// (`MANTLE_SLOW_K`).
    pub threshold_mult: f64,
    /// Lower bound on the adaptive threshold, so a uniformly fast op type
    /// does not flag noise (`MANTLE_SLOW_FLOOR_NANOS`).
    pub floor_nanos: u64,
    /// Fixed threshold overriding the adaptive one entirely
    /// (`MANTLE_SLOW_THRESHOLD_NANOS`).
    pub fixed_threshold_nanos: Option<u64>,
    /// Ops observed per `(system, op)` before the adaptive threshold arms
    /// (until then nothing is flagged — a trailing p99 of 3 samples is
    /// meaningless).
    pub warmup_ops: u64,
    /// The adaptive threshold is recomputed every this many ops (a fixed
    /// cadence keeps the decision deterministic under identical seeds).
    pub recompute_every: u64,
    /// Ops per attribution window; [`ExplainReport::recent`] covers the
    /// trailing windows.
    pub window_ops: u64,
    /// Completed attribution windows retained per `(system, op)`.
    pub max_windows: usize,
    /// Annotations retained per op before the rest are counted as elided.
    pub max_annotations: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            slow_capacity: 256,
            threshold_mult: 4.0,
            floor_nanos: 0,
            fixed_threshold_nanos: None,
            warmup_ops: 64,
            recompute_every: 32,
            window_ops: 256,
            max_windows: 8,
            max_annotations: 32,
        }
    }
}

impl FlightConfig {
    /// Default config with `MANTLE_SLOW_K`, `MANTLE_SLOW_FLOOR_NANOS` and
    /// `MANTLE_SLOW_THRESHOLD_NANOS` applied on top.
    pub fn from_env() -> Self {
        let mut cfg = FlightConfig::default();
        if let Some(k) = env_parse::<f64>("MANTLE_SLOW_K") {
            if k > 0.0 {
                cfg.threshold_mult = k;
            }
        }
        if let Some(floor) = env_parse::<u64>("MANTLE_SLOW_FLOOR_NANOS") {
            cfg.floor_nanos = floor;
        }
        cfg.fixed_threshold_nanos = env_parse::<u64>("MANTLE_SLOW_THRESHOLD_NANOS");
        cfg
    }
}

fn env_parse<T: std::str::FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok().and_then(|s| s.parse().ok())
}

/// One force-captured slow operation.
#[derive(Clone, Debug, Serialize)]
pub struct SlowOp {
    /// Capture sequence number within this recorder instance (1-based,
    /// deterministic under identical seeds).
    pub seq: u64,
    /// Service that ran the op (`mantle`, `infinifs`, …).
    pub system: String,
    /// Operation label (`create`, `lookup`, …).
    pub op: String,
    /// End-to-end latency on the simulated timeline, in nanoseconds.
    pub latency_nanos: u64,
    /// The threshold the op exceeded, in nanoseconds.
    pub threshold_nanos: u64,
    /// Path depth of the operation's target.
    pub path_depth: u32,
    /// RPC spans in the captured trace (0 if no trace was captured).
    pub rpcs: usize,
    /// Distinct serving nodes the op touched, sorted (the "shard set").
    pub shards: Vec<String>,
    /// Capture-point annotations (fault denies, stale-route retries,
    /// fsync retries, failovers …) in the order they happened.
    pub annotations: Vec<String>,
    /// Annotations dropped after [`FlightConfig::max_annotations`].
    pub annotations_elided: u32,
    /// Per-phase attribution of the whole op; under the virtual clock its
    /// total equals `latency_nanos` exactly.
    pub phases: PhaseAttribution,
    /// The full force-captured trace (`None` only when an enclosing trace
    /// already owned the thread's trace slot).
    pub trace: Option<Trace>,
}

impl SlowOp {
    /// Canonical one-line form of the event. Byte-stable across identical
    /// seeded runs: everything in it is a deterministic function of the
    /// workload (notably *no* trace ids, which are process-global).
    pub fn log_line(&self) -> String {
        let shards = if self.shards.is_empty() {
            "-".to_string()
        } else {
            self.shards.join(",")
        };
        let notes = if self.annotations.is_empty() {
            "-".to_string()
        } else {
            self.annotations.join(";")
        };
        format!(
            "slow seq={} system={} op={} depth={} latency_nanos={} threshold_nanos={} rpcs={} shards={} notes={} elided={} phases[{}]",
            self.seq,
            self.system,
            self.op,
            self.path_depth,
            self.latency_nanos,
            self.threshold_nanos,
            self.rpcs,
            shards,
            notes,
            self.annotations_elided,
            self.phases.canonical(),
        )
    }
}

/// Aggregated view of one `(system, op)` pair, for `mantle-cli explain`.
#[derive(Clone, Debug, Serialize)]
pub struct ExplainReport {
    /// Service name.
    pub system: String,
    /// Operation label.
    pub op: String,
    /// Ops observed.
    pub ops: u64,
    /// Median latency, nanoseconds.
    pub p50_nanos: u64,
    /// Trailing p99 latency, nanoseconds.
    pub p99_nanos: u64,
    /// Worst observed latency, nanoseconds.
    pub max_nanos: u64,
    /// Current slow threshold (`None` while still warming up).
    pub threshold_nanos: Option<u64>,
    /// Slow ops captured for this pair.
    pub slow: u64,
    /// Attribution over every observed op.
    pub total: PhaseAttribution,
    /// Attribution over the trailing windows only (recent behaviour).
    pub recent: PhaseAttribution,
}

impl ExplainReport {
    /// Human summary, e.g.
    /// `mantle/create: n=1024 p50=412.0us p99=1.8ms max=9.6ms (2 slow): 62% fsync, 21% queue`.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}/{}: n={} p50={} p99={} max={}",
            self.system,
            self.op,
            self.ops,
            fmt_nanos(self.p50_nanos),
            fmt_nanos(self.p99_nanos),
            fmt_nanos(self.max_nanos),
        );
        match self.threshold_nanos {
            Some(t) => out.push_str(&format!(
                " (threshold {}, {} slow)",
                fmt_nanos(t),
                self.slow
            )),
            None => out.push_str(" (warming up)"),
        }
        out.push_str(&format!(": {}", self.total.render()));
        if self.recent != self.total && !self.recent.is_empty() {
            out.push_str(&format!("\n  recent: {}", self.recent.render()));
        }
        out
    }
}

fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.1}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}us", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

/// Per-`(system, op)` trailing state.
struct OpTypeState {
    hist: Histogram,
    total: PhaseAttribution,
    window: PhaseAttribution,
    window_ops: u64,
    windows: VecDeque<PhaseAttribution>,
    /// `u64::MAX` while warming up (nothing flags).
    threshold: u64,
    slow: u64,
    slow_counter: Counter,
    phase_hists: [HistogramMetric; N_PHASES],
}

impl OpTypeState {
    fn new(system: &str, op: &str) -> Self {
        let phase_hists = TimeCategory::ALL.map(|cat| {
            crate::metrics::histogram(
                "obs_phase_nanos",
                &[("system", system), ("op", op), ("phase", cat.label())],
            )
        });
        OpTypeState {
            hist: Histogram::new(),
            total: PhaseAttribution::default(),
            window: PhaseAttribution::default(),
            window_ops: 0,
            windows: VecDeque::new(),
            threshold: u64::MAX,
            slow: 0,
            slow_counter: crate::metrics::counter(
                "obs_slow_ops_total",
                &[("system", system), ("op", op)],
            ),
            phase_hists,
        }
    }

    fn recent(&self) -> PhaseAttribution {
        let mut out = self.window;
        for w in &self.windows {
            out.add(w);
        }
        out
    }
}

/// A finished op as handed from [`FlightScope`] to the recorder.
struct ObservedOp {
    system: String,
    op: String,
    path_depth: u32,
    latency_nanos: u64,
    phases: PhaseAttribution,
    annotations: Vec<String>,
    annotations_elided: u32,
    trace: Option<Trace>,
    sampled: bool,
}

/// The flight recorder: per-op-type adaptive slow thresholds, a bounded
/// slow-op ring with drop accounting, and cumulative per-node phase
/// attribution. One process-global instance ([`global`]) serves production;
/// tests install private instances per thread
/// ([`install_thread_recorder`]) for deterministic isolation.
pub struct FlightRecorder {
    config: FlightConfig,
    armed: AtomicBool,
    seq: AtomicU64,
    states: Mutex<HashMap<(String, String), OpTypeState>>,
    slow: Mutex<VecDeque<SlowOp>>,
    slow_dropped: AtomicU64,
    slow_captured: AtomicU64,
    node_phases: Mutex<BTreeMap<String, PhaseAttribution>>,
}

impl FlightRecorder {
    /// Creates a recorder with the given config, initially disarmed.
    pub fn new(config: FlightConfig) -> Self {
        FlightRecorder {
            config,
            armed: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            states: Mutex::new(HashMap::new()),
            slow: Mutex::new(VecDeque::new()),
            slow_dropped: AtomicU64::new(0),
            slow_captured: AtomicU64::new(0),
            node_phases: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether [`op_scope`] captures through this recorder.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Starts capturing.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::Relaxed);
    }

    /// Stops capturing (in-flight scopes still complete).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Relaxed);
    }

    /// Clears all trailing state, the slow ring, per-node attribution and
    /// the capture sequence — the determinism tests call this between runs.
    pub fn reset(&self) {
        self.states.lock().clear();
        self.slow.lock().clear();
        self.node_phases.lock().clear();
        self.seq.store(0, Ordering::Relaxed);
        self.slow_dropped.store(0, Ordering::Relaxed);
        self.slow_captured.store(0, Ordering::Relaxed);
    }

    /// Clones up to `n` of the most recent slow-op events, newest last.
    pub fn slow_recent(&self, n: usize) -> Vec<SlowOp> {
        let ring = self.slow.lock();
        let skip = ring.len().saturating_sub(n);
        ring.iter().skip(skip).cloned().collect()
    }

    /// The canonical slow-op log: one [`SlowOp::log_line`] per retained
    /// event, newest last, newline-terminated. Byte-identical across
    /// identical seeded runs.
    pub fn slow_log(&self) -> String {
        let ring = self.slow.lock();
        let mut out = String::new();
        for ev in ring.iter() {
            out.push_str(&ev.log_line());
            out.push('\n');
        }
        out
    }

    /// Slow ops captured since creation (or [`FlightRecorder::reset`]),
    /// including any evicted from the ring.
    pub fn slow_captured_total(&self) -> u64 {
        self.slow_captured.load(Ordering::Relaxed)
    }

    /// Slow ops evicted unread from the full ring.
    pub fn slow_dropped_total(&self) -> u64 {
        self.slow_dropped.load(Ordering::Relaxed)
    }

    /// Cumulative exclusive per-node phase attribution across every
    /// captured trace, sorted by node name. The placement controller reads
    /// this to tell a fsync-bound shard from a queue-bound one.
    pub fn node_phases(&self) -> Vec<(String, PhaseAttribution)> {
        self.node_phases
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Reports for every `(system, op)` pair whose label matches `op`
    /// (exact match), sorted by system for stable output.
    pub fn explain(&self, op: &str) -> Vec<ExplainReport> {
        self.explain_all()
            .into_iter()
            .filter(|r| r.op == op)
            .collect()
    }

    /// Reports for every observed `(system, op)` pair, sorted.
    pub fn explain_all(&self) -> Vec<ExplainReport> {
        let states = self.states.lock();
        let mut keys: Vec<&(String, String)> = states.keys().collect();
        keys.sort();
        keys.into_iter()
            .map(|key| {
                let st = &states[key];
                ExplainReport {
                    system: key.0.clone(),
                    op: key.1.clone(),
                    ops: st.hist.count(),
                    p50_nanos: st.hist.quantile(0.5),
                    p99_nanos: st.hist.quantile(0.99),
                    max_nanos: st.hist.max(),
                    threshold_nanos: (st.threshold != u64::MAX).then_some(st.threshold),
                    slow: st.slow,
                    total: st.total,
                    recent: st.recent(),
                }
            })
            .collect()
    }

    fn observe(&self, o: ObservedOp) {
        if let Some(tr) = &o.trace {
            if o.sampled {
                trace::push_to_ring(tr.clone());
            }
            let mut np = self.node_phases.lock();
            for (node, attr) in critpath::per_node(tr) {
                np.entry(node).or_default().add(&attr);
            }
        }

        let mut states = self.states.lock();
        let st = states
            .entry((o.system.clone(), o.op.clone()))
            .or_insert_with(|| OpTypeState::new(&o.system, &o.op));

        // Flag against the *trailing* threshold (computed from prior ops),
        // then fold this op in and recompute on cadence.
        let threshold = st.threshold;
        let is_slow = o.latency_nanos > threshold;

        st.hist.record(o.latency_nanos);
        st.total.add(&o.phases);
        st.window.add(&o.phases);
        st.window_ops += 1;
        if st.window_ops >= self.config.window_ops {
            if st.windows.len() == self.config.max_windows {
                st.windows.pop_front();
            }
            let full = st.window;
            st.windows.push_back(full);
            st.window = PhaseAttribution::default();
            st.window_ops = 0;
        }
        for (i, cat) in TimeCategory::ALL.iter().enumerate() {
            let nanos = o.phases.nanos(*cat);
            if nanos > 0 {
                st.phase_hists[i].record(nanos);
            }
        }

        let n = st.hist.count();
        if let Some(fixed) = self.config.fixed_threshold_nanos {
            st.threshold = fixed;
        } else if n >= self.config.warmup_ops && n.is_multiple_of(self.config.recompute_every) {
            let p99 = st.hist.quantile(0.99);
            let adaptive = (p99 as f64 * self.config.threshold_mult) as u64;
            st.threshold = adaptive.max(self.config.floor_nanos);
        }

        if !is_slow {
            return;
        }
        st.slow += 1;
        st.slow_counter.inc();
        drop(states);

        self.slow_captured.fetch_add(1, Ordering::Relaxed);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let event = SlowOp {
            seq,
            system: o.system,
            op: o.op,
            latency_nanos: o.latency_nanos,
            threshold_nanos: threshold,
            path_depth: o.path_depth,
            rpcs: o.trace.as_ref().map_or(0, Trace::rpc_count),
            shards: o.trace.as_ref().map(Trace::nodes).unwrap_or_default(),
            annotations: o.annotations,
            annotations_elided: o.annotations_elided,
            phases: o.phases,
            trace: o.trace,
        };
        let mut ring = self.slow.lock();
        if ring.len() == self.config.slow_capacity {
            ring.pop_front();
            self.slow_dropped.fetch_add(1, Ordering::Relaxed);
            crate::metrics::counter("obs_slow_dropped_total", &[]).inc();
        }
        ring.push_back(event);
    }
}

/// The process-global recorder (disarmed until [`arm_from_env`] or
/// [`FlightRecorder::arm`]).
pub fn global() -> &'static Arc<FlightRecorder> {
    static GLOBAL: OnceLock<Arc<FlightRecorder>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(FlightRecorder::new(FlightConfig::from_env())))
}

/// Arms the global recorder from the environment: armed by default (the
/// recorder is meant to be always-on in harnesses and the CLI), disarmed
/// only by `MANTLE_FLIGHT=0`/`false`. Returns whether it ended up armed.
/// Harness entry points and the CLI call this once at startup.
pub fn arm_from_env() -> bool {
    let off = matches!(
        std::env::var("MANTLE_FLIGHT").ok().as_deref(),
        Some("0") | Some("false") | Some("no")
    );
    if off {
        global().disarm();
    } else {
        global().arm();
    }
    !off
}

/// In-flight per-op context for the current thread.
struct ActiveOp {
    recorder: Arc<FlightRecorder>,
    system: String,
    op: String,
    path_depth: u32,
    started: SimInstant,
    ledger0: TimeStats,
    annotations: Vec<String>,
    annotations_elided: u32,
    max_annotations: usize,
    guard: Option<TraceGuard>,
    sampled: bool,
}

thread_local! {
    static ACTIVE_OP: RefCell<Option<ActiveOp>> = const { RefCell::new(None) };
    static THREAD_RECORDER: RefCell<Option<Arc<FlightRecorder>>> = const { RefCell::new(None) };
}

/// Routes the current thread's [`op_scope`] calls to `recorder` (armed or
/// not) until the returned guard drops — deterministic isolation for tests
/// that must not share trailing state with the rest of the process.
pub fn install_thread_recorder(recorder: Arc<FlightRecorder>) -> ThreadRecorderGuard {
    let prev = THREAD_RECORDER.with(|cell| cell.borrow_mut().replace(recorder));
    ThreadRecorderGuard { prev }
}

/// Restores the previously installed thread recorder (if any) on drop.
pub struct ThreadRecorderGuard {
    prev: Option<Arc<FlightRecorder>>,
}

impl Drop for ThreadRecorderGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        THREAD_RECORDER.with(|cell| *cell.borrow_mut() = prev);
    }
}

/// The recorder [`op_scope`] would capture through right now: the thread
/// override if installed, else the global recorder if armed.
pub fn effective_recorder() -> Option<Arc<FlightRecorder>> {
    if let Some(r) = THREAD_RECORDER.with(|cell| cell.borrow().clone()) {
        return Some(r);
    }
    let g = global();
    g.is_armed().then(|| Arc::clone(g))
}

/// Opens a flight-recorder scope for one operation: `system` names the
/// service (`mantle`, `infinifs`, …), `op` the operation label, and
/// `path_depth` the target's depth. Returns `None` when no recorder is
/// effective or an op is already in flight on this thread (the outer scope
/// owns the op). While the scope is open the thread runs under a detached
/// trace; on drop the recorder decides whether the op was slow.
///
/// The scope also runs the sampled-ring selection ([`trace::sampler_selects`])
/// so arming the recorder does not starve the ordinary trace ring.
pub fn op_scope(system: &str, op: &str, path_depth: u32) -> Option<FlightScope> {
    let recorder = effective_recorder()?;
    ACTIVE_OP.with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot.is_some() {
            return None;
        }
        let sampled = trace::sampler_selects();
        let guard = trace::start_detached(op);
        let max_annotations = recorder.config.max_annotations;
        *slot = Some(ActiveOp {
            recorder,
            system: system.to_string(),
            op: op.to_string(),
            path_depth,
            started: clock::now(),
            ledger0: clock::thread_time_stats(),
            annotations: Vec::new(),
            annotations_elided: 0,
            max_annotations,
            guard,
            sampled,
        });
        Some(FlightScope { _priv: () })
    })
}

/// Whether an [`op_scope`] is open on this thread. Capture sites check
/// this (or just call [`annotate_with`], which checks internally).
#[inline]
pub fn is_op_active() -> bool {
    ACTIVE_OP.with(|cell| cell.borrow().is_some())
}

/// Attaches a note to the in-flight op, if any — fault denies, stale-route
/// retries, fsync retries, failovers. Notes ride along on the [`SlowOp`]
/// event if the op is flagged slow. No-op (one thread-local read) when no
/// op is in flight.
pub fn annotate(note: &str) {
    annotate_with(|| note.to_string());
}

/// [`annotate`] with lazy construction: the closure only runs when an op
/// is actually in flight, so capture sites pay nothing for the format when
/// the recorder is disarmed.
pub fn annotate_with(f: impl FnOnce() -> String) {
    ACTIVE_OP.with(|cell| {
        if let Some(ctx) = cell.borrow_mut().as_mut() {
            if ctx.annotations.len() < ctx.max_annotations {
                ctx.annotations.push(f());
            } else {
                ctx.annotations_elided += 1;
            }
        }
    });
}

/// RAII handle for one recorded operation; the slow/fast decision happens
/// on drop.
pub struct FlightScope {
    _priv: (),
}

impl Drop for FlightScope {
    fn drop(&mut self) {
        let Some(ctx) = ACTIVE_OP.with(|cell| cell.borrow_mut().take()) else {
            return;
        };
        // Finish the detached trace *first* so its root span closes at the
        // same virtual instant the latency is measured at.
        let trace = ctx.guard.map(TraceGuard::finish);
        let latency_nanos = ctx.started.elapsed().as_nanos() as u64;
        let phases = PhaseAttribution::from_delta(&ctx.ledger0, &clock::thread_time_stats());
        ctx.recorder.observe(ObservedOp {
            system: ctx.system,
            op: ctx.op,
            path_depth: ctx.path_depth,
            latency_nanos,
            phases,
            annotations: ctx.annotations,
            annotations_elided: ctx.annotations_elided,
            trace,
            sampled: ctx.sampled,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn recorder(config: FlightConfig) -> Arc<FlightRecorder> {
        Arc::new(FlightRecorder::new(config))
    }

    #[test]
    fn fast_ops_are_not_captured_slow_ones_are() {
        let rec = recorder(FlightConfig {
            warmup_ops: 4,
            recompute_every: 2,
            threshold_mult: 2.0,
            ..FlightConfig::default()
        });
        let _g = install_thread_recorder(Arc::clone(&rec));
        // Warm up with uniform 100us ops: threshold settles near 200us.
        for _ in 0..8 {
            let s = op_scope("mantle", "lookup", 4).expect("scope");
            clock::sleep_as(TimeCategory::Rtt, Duration::from_micros(100));
            drop(s);
        }
        assert_eq!(rec.slow_captured_total(), 0, "uniform ops must not flag");

        // One 10x outlier with annotations.
        {
            let s = op_scope("mantle", "lookup", 4).expect("scope");
            clock::sleep_as(TimeCategory::Rtt, Duration::from_micros(100));
            annotate("fault:deny site=wal_fsync");
            clock::sleep_as(TimeCategory::Fault, Duration::from_micros(900));
            drop(s);
        }
        assert_eq!(rec.slow_captured_total(), 1);
        let slow = rec.slow_recent(8);
        assert_eq!(slow.len(), 1);
        let ev = &slow[0];
        assert_eq!(ev.seq, 1);
        assert_eq!(ev.latency_nanos, 1_000_000);
        assert_eq!(
            ev.phases.total_nanos(),
            ev.latency_nanos,
            "attribution closes"
        );
        assert_eq!(ev.annotations, vec!["fault:deny site=wal_fsync"]);
        assert!(ev.trace.is_some(), "trace force-captured");
        assert!(ev.log_line().contains("notes=fault:deny site=wal_fsync"));

        let reports = rec.explain("lookup");
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].ops, 9);
        assert_eq!(reports[0].slow, 1);
        assert!(reports[0].render().contains("mantle/lookup"));
    }

    #[test]
    fn warmup_blocks_capture_and_fixed_threshold_bypasses_it() {
        let rec = recorder(FlightConfig::default());
        let _g = install_thread_recorder(Arc::clone(&rec));
        {
            let s = op_scope("mantle", "mkdir", 1).expect("scope");
            clock::sleep_as(TimeCategory::Other, Duration::from_secs(1));
            drop(s);
        }
        assert_eq!(
            rec.slow_captured_total(),
            0,
            "nothing flags during warmup without a fixed threshold"
        );

        let rec = recorder(FlightConfig {
            fixed_threshold_nanos: Some(1_000),
            ..FlightConfig::default()
        });
        let _g = install_thread_recorder(Arc::clone(&rec));
        for _ in 0..2 {
            let s = op_scope("mantle", "mkdir", 1).expect("scope");
            clock::sleep_as(TimeCategory::Other, Duration::from_micros(50));
            drop(s);
        }
        // Op 1 observes the warmup threshold before the fixed value
        // installs; op 2 flags against it.
        assert_eq!(rec.slow_captured_total(), 1);
    }

    #[test]
    fn slow_ring_evicts_with_drop_accounting() {
        let rec = recorder(FlightConfig {
            slow_capacity: 2,
            fixed_threshold_nanos: Some(0),
            ..FlightConfig::default()
        });
        let _g = install_thread_recorder(Arc::clone(&rec));
        for _ in 0..5 {
            let s = op_scope("mantle", "rm", 2).expect("scope");
            clock::sleep_as(TimeCategory::Other, Duration::from_micros(10));
            drop(s);
        }
        // Op 1 observes the warmup threshold (MAX) before the fixed value
        // installs, so 4 of 5 flag; ring keeps 2, drops 2.
        assert_eq!(rec.slow_captured_total(), 4);
        assert_eq!(rec.slow_recent(16).len(), 2);
        assert_eq!(rec.slow_dropped_total(), 2);
        let last = rec.slow_recent(1).remove(0);
        assert_eq!(last.seq, 4);
    }

    #[test]
    fn scopes_do_not_nest_and_reset_clears() {
        let rec = recorder(FlightConfig {
            fixed_threshold_nanos: Some(0),
            ..FlightConfig::default()
        });
        let _g = install_thread_recorder(Arc::clone(&rec));
        let outer = op_scope("mantle", "mv", 3).expect("outer");
        assert!(op_scope("mantle", "mv", 3).is_none(), "no nesting");
        assert!(is_op_active());
        clock::sleep_as(TimeCategory::Other, Duration::from_micros(1));
        drop(outer);
        assert!(!is_op_active());

        assert!(rec.slow_captured_total() > 0 || !rec.explain_all().is_empty());
        rec.reset();
        assert_eq!(rec.slow_captured_total(), 0);
        assert!(rec.explain_all().is_empty());
        assert!(rec.slow_log().is_empty());
    }
}
