//! End-to-end Mantle metadata service tests across IndexNode and TafDB.

use std::sync::Arc;

use mantle_core::{MantleCluster, MantleConfig};
use mantle_types::{MetaError, MetaPath, MetadataService, Phase, RequestCtx, SimConfig};

fn p(s: &str) -> MetaPath {
    MetaPath::parse(s).unwrap()
}

fn cluster() -> Arc<MantleCluster> {
    MantleCluster::build(SimConfig::instant(), 4)
}

#[test]
fn full_object_lifecycle() {
    let svc = cluster();
    let mut stats = RequestCtx::new();
    svc.mkdir(&p("/data"), &mut stats).unwrap();
    svc.create(&p("/data/obj"), 4096, &mut stats).unwrap();
    let meta = svc.objstat(&p("/data/obj"), &mut stats).unwrap();
    assert_eq!(meta.size, 4096);
    assert_eq!(
        svc.dirstat(&p("/data"), &mut stats).unwrap().attrs.entries,
        1
    );
    svc.delete(&p("/data/obj"), &mut stats).unwrap();
    assert!(matches!(
        svc.objstat(&p("/data/obj"), &mut stats),
        Err(MetaError::NotFound(_))
    ));
    assert_eq!(
        svc.dirstat(&p("/data"), &mut stats).unwrap().attrs.entries,
        0
    );
    svc.rmdir(&p("/data"), &mut stats).unwrap();
    assert!(svc.lookup(&p("/data"), &mut stats).is_err());
}

#[test]
fn mkdir_requires_existing_parent() {
    let svc = cluster();
    let mut stats = RequestCtx::new();
    assert!(matches!(
        svc.mkdir(&p("/missing/child"), &mut stats),
        Err(MetaError::NotFound(_))
    ));
}

#[test]
fn duplicate_mkdir_and_create_rejected() {
    let svc = cluster();
    let mut stats = RequestCtx::new();
    svc.mkdir(&p("/d"), &mut stats).unwrap();
    assert!(matches!(
        svc.mkdir(&p("/d"), &mut stats),
        Err(MetaError::AlreadyExists(_))
    ));
    svc.create(&p("/d/o"), 1, &mut stats).unwrap();
    assert!(matches!(
        svc.create(&p("/d/o"), 2, &mut stats),
        Err(MetaError::AlreadyExists(_))
    ));
}

#[test]
fn rmdir_of_non_empty_dir_fails() {
    let svc = cluster();
    let mut stats = RequestCtx::new();
    svc.mkdir(&p("/d"), &mut stats).unwrap();
    svc.create(&p("/d/o"), 1, &mut stats).unwrap();
    assert!(matches!(
        svc.rmdir(&p("/d"), &mut stats),
        Err(MetaError::NotEmpty(_))
    ));
    svc.delete(&p("/d/o"), &mut stats).unwrap();
    svc.rmdir(&p("/d"), &mut stats).unwrap();
}

#[test]
fn delete_of_directory_and_objstat_of_dir_rejected() {
    let svc = cluster();
    let mut stats = RequestCtx::new();
    svc.mkdir(&p("/d"), &mut stats).unwrap();
    assert!(matches!(
        svc.delete(&p("/d"), &mut stats),
        Err(MetaError::IsADirectory(_))
    ));
    assert!(matches!(
        svc.objstat(&p("/d"), &mut stats),
        Err(MetaError::IsADirectory(_))
    ));
}

#[test]
fn deep_lookup_is_single_rpc_for_metadata() {
    // Disable follower reads so the round-robin cannot add the (batched)
    // commit-index query a follower read pays; the leader path is the
    // paper's canonical single-RPC lookup.
    // Non-zero modeled delays so the phase-time assertion below is
    // meaningful under the virtual clock (an all-zero model measures
    // exactly zero phase time).
    let mut config = MantleConfig::with_sim(SimConfig::fast(), 4);
    config.index.follower_reads = false;
    let svc = MantleCluster::with_config(config);
    let mut stats = RequestCtx::new();
    let mut path = MetaPath::root();
    for i in 0..10 {
        path = path.child(&format!("level{i}"));
        svc.mkdir(&path, &mut stats).unwrap();
    }
    let mut lstats = RequestCtx::new();
    let resolved = svc.lookup(&path, &mut lstats).unwrap();
    assert!(resolved.id.raw() > 1);
    assert_eq!(lstats.rpcs, 1, "10-level lookup must be a single RPC");
    assert!(lstats.phase_nanos(Phase::Lookup) > 0);
    assert_eq!(lstats.phase_nanos(Phase::Execute), 0);
}

#[test]
fn rename_moves_directory_across_parents() {
    // Non-zero modeled delays: the LoopDetect phase assertion needs
    // modeled time under the virtual clock.
    let svc = MantleCluster::build(SimConfig::fast(), 4);
    let mut stats = RequestCtx::new();
    svc.mkdir(&p("/src"), &mut stats).unwrap();
    svc.mkdir(&p("/src/inner"), &mut stats).unwrap();
    svc.create(&p("/src/inner/obj"), 9, &mut stats).unwrap();
    svc.mkdir(&p("/dst"), &mut stats).unwrap();

    svc.rename_dir(&p("/src/inner"), &p("/dst/moved"), &mut stats)
        .unwrap();

    // The whole subtree follows the rename.
    assert_eq!(
        svc.objstat(&p("/dst/moved/obj"), &mut stats).unwrap().size,
        9
    );
    assert!(matches!(
        svc.objstat(&p("/src/inner/obj"), &mut stats),
        Err(MetaError::NotFound(_))
    ));
    // Entry counts moved from /src to /dst.
    assert_eq!(
        svc.dirstat(&p("/src"), &mut stats).unwrap().attrs.entries,
        0
    );
    assert_eq!(
        svc.dirstat(&p("/dst"), &mut stats).unwrap().attrs.entries,
        1
    );
    // Loop-detection phase was charged, lookup phase was not (§6.3).
    assert!(stats.phase_nanos(Phase::LoopDetect) > 0);
}

#[test]
fn rename_into_own_subtree_rejected() {
    let svc = cluster();
    let mut stats = RequestCtx::new();
    svc.mkdir(&p("/a"), &mut stats).unwrap();
    svc.mkdir(&p("/a/b"), &mut stats).unwrap();
    assert!(matches!(
        svc.rename_dir(&p("/a"), &p("/a/b/c"), &mut stats),
        Err(MetaError::RenameLoop { .. })
    ));
}

#[test]
fn rename_onto_existing_object_aborts_and_unlocks() {
    let svc = cluster();
    let mut stats = RequestCtx::new();
    svc.mkdir(&p("/a"), &mut stats).unwrap();
    svc.mkdir(&p("/b"), &mut stats).unwrap();
    svc.create(&p("/b/taken"), 1, &mut stats).unwrap();
    // Destination name exists as an *object*: the IndexNode cannot see it,
    // the metadata transaction aborts, and the rename lock is rolled back.
    assert!(matches!(
        svc.rename_dir(&p("/a"), &p("/b/taken"), &mut stats),
        Err(MetaError::AlreadyExists(_))
    ));
    // The source is unlocked and still movable.
    svc.rename_dir(&p("/a"), &p("/b/fresh"), &mut stats)
        .unwrap();
    assert!(svc.lookup(&p("/b/fresh"), &mut stats).is_ok());
}

#[test]
fn concurrent_creates_in_shared_directory_all_succeed() {
    let svc = cluster();
    let mut stats = RequestCtx::new();
    svc.mkdir(&p("/shared"), &mut stats).unwrap();
    std::thread::scope(|s| {
        for t in 0..8 {
            let svc = &svc;
            s.spawn(move || {
                let mut stats = RequestCtx::new();
                for i in 0..25 {
                    svc.create(&p(&format!("/shared/obj_{t}_{i}")), 1, &mut stats)
                        .unwrap();
                }
            });
        }
    });
    assert_eq!(
        svc.dirstat(&p("/shared"), &mut stats)
            .unwrap()
            .attrs
            .entries,
        200
    );
    assert_eq!(svc.readdir(&p("/shared"), &mut stats).unwrap().len(), 200);
}

#[test]
fn concurrent_renames_into_shared_target_serialize_correctly() {
    // The Spark-analytics commit pattern: every task renames its temp dir
    // into one shared output directory (§3.2).
    let svc = cluster();
    let mut stats = RequestCtx::new();
    svc.mkdir(&p("/out"), &mut stats).unwrap();
    for t in 0..8 {
        svc.mkdir(&p(&format!("/tmp{t}")), &mut stats).unwrap();
        svc.create(&p(&format!("/tmp{t}/part")), 1, &mut stats)
            .unwrap();
    }
    std::thread::scope(|s| {
        for t in 0..8 {
            let svc = &svc;
            s.spawn(move || {
                let mut stats = RequestCtx::new();
                svc.rename_dir(
                    &p(&format!("/tmp{t}")),
                    &p(&format!("/out/task{t}")),
                    &mut stats,
                )
                .unwrap();
            });
        }
    });
    let listing = svc.readdir(&p("/out"), &mut stats).unwrap();
    assert_eq!(listing.len(), 8);
    for t in 0..8 {
        assert_eq!(
            svc.objstat(&p(&format!("/out/task{t}/part")), &mut stats)
                .unwrap()
                .size,
            1
        );
    }
    assert_eq!(
        svc.dirstat(&p("/out"), &mut stats).unwrap().attrs.entries,
        8
    );
}

#[test]
fn index_leader_failover_is_transparent() {
    let mut config = MantleConfig::with_sim(SimConfig::instant(), 4);
    config.index.raft.election_timeout_min = std::time::Duration::from_millis(50);
    config.index.raft.election_timeout_max = std::time::Duration::from_millis(100);
    let svc = MantleCluster::with_config(config);
    let mut stats = RequestCtx::new();
    svc.mkdir(&p("/d"), &mut stats).unwrap();
    svc.create(&p("/d/o"), 7, &mut stats).unwrap();

    let leader = svc.index().group().leader().unwrap();
    svc.index().group().crash(leader.id());

    // Operations retry through the re-election window and then succeed.
    assert_eq!(svc.objstat(&p("/d/o"), &mut stats).unwrap().size, 7);
    svc.mkdir(&p("/d/after_failover"), &mut stats).unwrap();
    assert!(svc.lookup(&p("/d/after_failover"), &mut stats).is_ok());
}

#[test]
fn data_service_round_trip_with_metadata() {
    let svc = cluster();
    let mut stats = RequestCtx::new();
    svc.mkdir(&p("/d"), &mut stats).unwrap();
    svc.create(&p("/d/o"), 128, &mut stats).unwrap();
    let blob = svc.data().raw_write(128);
    assert_eq!(svc.data().read(blob, &mut stats).unwrap(), 128);
}
