//! Bulk namespace population.
//!
//! Experiments populate namespaces with up to millions of entries before
//! measuring (§6.1: "we use mdtest to populate each system ... scaling the
//! namespace size to 1 billion entries"). Doing that through the normal
//! operation path would pay simulated network/fsync delays per entry, so
//! the populator writes TafDB rows and IndexNode entries directly — the
//! moral equivalent of restoring from a snapshot — while keeping parent
//! attribute counts exact.

use std::collections::HashMap;

use mantle_tafdb::{attr_key, entry_key, Row};
use mantle_types::{AttrDelta, DirAttrMeta, InodeId, MetaPath, ObjectMeta, Permission};

use crate::cluster::MantleCluster;

/// A single-threaded bulk loader for a [`MantleCluster`].
pub struct Populator<'a> {
    cluster: &'a MantleCluster,
    path_ids: HashMap<MetaPath, InodeId>,
    dirs: u64,
    objects: u64,
}

impl<'a> Populator<'a> {
    /// Creates a populator; the root is pre-registered.
    pub fn new(cluster: &'a MantleCluster) -> Self {
        let mut path_ids = HashMap::new();
        path_ids.insert(MetaPath::root(), cluster.root());
        Populator {
            cluster,
            path_ids,
            dirs: 0,
            objects: 0,
        }
    }

    /// Ensures every directory on `path` exists, returning the final id.
    pub fn ensure_dir(&mut self, path: &MetaPath) -> InodeId {
        if let Some(id) = self.path_ids.get(path) {
            return *id;
        }
        let parent_path = path.parent().expect("root is pre-registered");
        let pid = self.ensure_dir(&parent_path);
        let name = path.name().expect("non-root");
        let id = self.cluster.ids().alloc();
        let now = self.cluster.now();
        let db = self.cluster.db();
        db.raw_put(
            entry_key(pid, name),
            Row::DirAccess {
                id,
                permission: Permission::ALL,
            },
        );
        db.raw_put(attr_key(id), Row::DirAttr(DirAttrMeta::new(now, 0)));
        self.bump_parent(
            pid,
            AttrDelta {
                nlink: 1,
                entries: 1,
                mtime: now,
            },
        );
        self.cluster
            .index()
            .raw_insert_dir(pid, name, id, Permission::ALL);
        self.path_ids.insert(path.clone(), id);
        self.dirs += 1;
        id
    }

    /// Adds an object at `path`, creating parent directories as needed.
    /// Returns the object id.
    pub fn add_object(&mut self, path: &MetaPath, size: u64) -> InodeId {
        let parent_path = path.parent().expect("objects cannot be the root");
        let pid = self.ensure_dir(&parent_path);
        let name = path.name().expect("non-root");
        let id = self.cluster.ids().alloc();
        let now = self.cluster.now();
        let blob = self.cluster.data().raw_write(size);
        self.cluster.db().raw_put(
            entry_key(pid, name),
            Row::Object(ObjectMeta {
                pid,
                name: name.to_string(),
                id,
                size,
                blob,
                ctime: now,
                permission: Permission::ALL,
            }),
        );
        self.bump_parent(
            pid,
            AttrDelta {
                nlink: 0,
                entries: 1,
                mtime: now,
            },
        );
        self.objects += 1;
        id
    }

    fn bump_parent(&self, pid: InodeId, delta: AttrDelta) {
        let db = self.cluster.db();
        let key = attr_key(pid);
        if let Some(Row::DirAttr(mut attrs)) = db.raw_get(&key) {
            attrs.apply_delta(&delta);
            db.raw_put(key, Row::DirAttr(attrs));
        }
    }

    /// Directories created so far.
    pub fn dirs(&self) -> u64 {
        self.dirs
    }

    /// Objects created so far.
    pub fn objects(&self) -> u64 {
        self.objects
    }

    /// The id of an already-populated directory path.
    pub fn dir_id(&self, path: &MetaPath) -> Option<InodeId> {
        self.path_ids.get(path).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantle_types::RequestCtx;
    use mantle_types::{MetadataService, SimConfig};

    fn p(s: &str) -> MetaPath {
        MetaPath::parse(s).unwrap()
    }

    #[test]
    fn populated_namespace_is_fully_operational() {
        let cluster = MantleCluster::build(SimConfig::instant(), 4);
        {
            let mut pop = Populator::new(&cluster);
            pop.ensure_dir(&p("/a/b/c"));
            pop.add_object(&p("/a/b/c/obj1"), 1024);
            pop.add_object(&p("/a/b/c/obj2"), 2048);
            pop.add_object(&p("/a/other/obj3"), 512);
            assert_eq!(pop.dirs(), 4); // a, b, c, other
            assert_eq!(pop.objects(), 3);
            assert_eq!(
                pop.dir_id(&p("/a/b/c")),
                pop.path_ids.get(&p("/a/b/c")).copied()
            );
        }
        let svc = cluster.service();
        let mut stats = RequestCtx::new();
        // Lookups, stats and listings all see the populated state.
        assert_eq!(
            svc.objstat(&p("/a/b/c/obj1"), &mut stats).unwrap().size,
            1024
        );
        let st = svc.dirstat(&p("/a/b/c"), &mut stats).unwrap();
        assert_eq!(st.attrs.entries, 2);
        let names: Vec<String> = svc
            .readdir(&p("/a/b"), &mut stats)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["c"]);
        // And the namespace remains mutable through the normal path.
        svc.mkdir(&p("/a/b/c/d"), &mut stats).unwrap();
        assert_eq!(
            svc.dirstat(&p("/a/b/c"), &mut stats).unwrap().attrs.entries,
            3
        );
    }

    #[test]
    fn ensure_dir_is_idempotent() {
        let cluster = MantleCluster::build(SimConfig::instant(), 4);
        let mut pop = Populator::new(&cluster);
        let id1 = pop.ensure_dir(&p("/x/y"));
        let id2 = pop.ensure_dir(&p("/x/y"));
        assert_eq!(id1, id2);
        assert_eq!(pop.dirs(), 2);
    }
}
