//! The Mantle proxy logic: every metadata operation, coordinated across
//! IndexNode and TafDB.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mantle_index::cache::CachedPrefix;
use mantle_index::{IndexNode, IndexOptions, TopDirPathCache};
use mantle_rpc::{classify_failover, classify_rename, RetryPolicy};
use mantle_tafdb::{attr_key, entry_key, Row, TafDb, TafDbOptions, TxnOp};
use mantle_types::{
    id::IdAllocator,
    AttrDelta,
    ClientUuid,
    DirAttrMeta,
    DirEntry,
    DirStat,
    InodeId,
    MetaError,
    MetaPath,
    MetadataService,
    ObjectMeta,
    Permission,
    Phase,
    RequestCtx,
    ResolvedPath,
    Result,
    SimConfig, //
};

use crate::data::DataService;
use crate::pathcache::{LeaseProbe, PathCacheStats, PathLeaseCache, PathLeaseConfig};

/// Per-operation service counters (`service_ops_total{system,op}`), created
/// once per cluster so the per-op cost is a single atomic increment.
pub struct SvcMetrics {
    lookup: mantle_obs::Counter,
    mkdir: mantle_obs::Counter,
    rmdir: mantle_obs::Counter,
    create: mantle_obs::Counter,
    delete: mantle_obs::Counter,
    objstat: mantle_obs::Counter,
    dirstat: mantle_obs::Counter,
    readdir: mantle_obs::Counter,
    list: mantle_obs::Counter,
    rename: mantle_obs::Counter,
    setattr: mantle_obs::Counter,
}

impl SvcMetrics {
    /// Creates the counter set for `system` (the service's `name()`).
    pub fn new(system: &str) -> Self {
        let op =
            |o: &str| mantle_obs::counter("service_ops_total", &[("system", system), ("op", o)]);
        SvcMetrics {
            lookup: op("lookup"),
            mkdir: op("mkdir"),
            rmdir: op("rmdir"),
            create: op("create"),
            delete: op("delete"),
            objstat: op("objstat"),
            dirstat: op("dirstat"),
            readdir: op("readdir"),
            list: op("list"),
            rename: op("rename_dir"),
            setattr: op("setattr"),
        }
    }

    /// The counter for `op` (a [`MetadataService`] method name).
    pub fn op(&self, op: &str) -> &mantle_obs::Counter {
        match op {
            "lookup" => &self.lookup,
            "mkdir" => &self.mkdir,
            "rmdir" => &self.rmdir,
            "create" => &self.create,
            "delete" => &self.delete,
            "objstat" => &self.objstat,
            "dirstat" => &self.dirstat,
            "readdir" => &self.readdir,
            "list" => &self.list,
            "rename_dir" => &self.rename,
            "setattr" => &self.setattr,
            other => panic!("unknown service op {other:?}"),
        }
    }
}

/// Full configuration of a Mantle deployment.
#[derive(Clone, Copy, Debug)]
pub struct MantleConfig {
    /// Substrate timing/capacity.
    pub sim: SimConfig,
    /// IndexNode options (k, caching, follower reads, replication).
    pub index: IndexOptions,
    /// TafDB options (shards, delta records, group commit).
    pub db: TafDbOptions,
    /// Data-service node count.
    pub data_nodes: usize,
    /// Proxy-level retries for rename lock conflicts.
    pub rename_retries: u32,
    /// Proxy-level retries for transient unavailability (leader failover).
    pub unavailable_retries: u32,
    /// Equip the proxy with an AM-Cache-style full-path metadata cache
    /// (the Figure 20 experiment; off in Mantle's normal configuration).
    pub amcache: bool,
    /// Client-side path-lease cache (DESIGN.md §4.13). Defaults from the
    /// `MANTLE_PATH_CACHE*` environment — off unless opted in, which keeps
    /// the cache-off latency pins byte-identical.
    pub pcache: PathLeaseConfig,
}

impl Default for MantleConfig {
    fn default() -> Self {
        MantleConfig {
            sim: SimConfig::default(),
            index: IndexOptions::default(),
            db: TafDbOptions::default(),
            data_nodes: 4,
            rename_retries: 10_000,
            unavailable_retries: 600,
            amcache: false,
            pcache: PathLeaseConfig::from_env(),
        }
    }
}

impl MantleConfig {
    /// A configuration using `sim` everywhere, with `db_shards` TafDB
    /// shards.
    pub fn with_sim(sim: SimConfig, db_shards: usize) -> Self {
        let mut config = MantleConfig {
            sim,
            ..MantleConfig::default()
        };
        config.db.n_shards = db_shards;
        config
    }
}

/// A complete Mantle metadata-service deployment for one namespace.
pub struct MantleCluster {
    config: MantleConfig,
    db: Arc<TafDb>,
    index: Arc<IndexNode>,
    data: Arc<DataService>,
    ids: Arc<IdAllocator>,
    clock: AtomicU64,
    /// This namespace's root directory id (distinct per namespace when a
    /// region shares one TafDB across namespaces, §7.1).
    root: InodeId,
    /// Proxy-side AM-Cache (Figure 20): full-path resolutions, k = 0.
    amcache: TopDirPathCache,
    /// Client-side path-lease cache (DESIGN.md §4.13).
    pcache: PathLeaseCache,
    /// Fault plan driving the `LeaseExpire`/`StaleRead` probe faults; the
    /// proxy has no `SimNode` of its own, so the cache gets its own slot.
    pcache_faults: mantle_rpc::FaultSlot,
    ops: SvcMetrics,
}

impl MantleCluster {
    /// Builds a cluster from an explicit configuration.
    pub fn with_config(config: MantleConfig) -> Arc<Self> {
        let db = TafDb::new(config.sim, config.db);
        let data = Arc::new(DataService::new(config.sim, config.data_nodes));
        Self::with_shared(
            config,
            db,
            data,
            Arc::new(IdAllocator::new()),
            mantle_types::ROOT_ID,
        )
    }

    /// Builds a namespace over a *shared* TafDB/data service (§7.1: within
    /// a cluster "all namespaces share a common TafDB deployment"). The
    /// caller provides the region-wide id allocator and this namespace's
    /// root id, whose attribute row must already exist in `db`.
    pub fn with_shared(
        mut config: MantleConfig,
        db: Arc<TafDb>,
        data: Arc<DataService>,
        ids: Arc<IdAllocator>,
        root: InodeId,
    ) -> Arc<Self> {
        config.index.root = root;
        let index = Arc::new(IndexNode::new(config.sim, config.index));
        Arc::new(MantleCluster {
            config,
            db,
            index,
            data,
            ids,
            clock: AtomicU64::new(1),
            root,
            amcache: TopDirPathCache::new(0, config.amcache),
            pcache: PathLeaseCache::new(config.pcache, "mantle"),
            pcache_faults: mantle_rpc::FaultSlot::new(),
            ops: SvcMetrics::new("mantle"),
        })
    }

    /// This namespace's root directory id.
    pub fn root(&self) -> InodeId {
        self.root
    }

    /// Convenience constructor: timing `sim`, `db_shards` TafDB shards,
    /// defaults everywhere else.
    pub fn build(sim: SimConfig, db_shards: usize) -> Arc<Self> {
        Self::with_config(MantleConfig::with_sim(sim, db_shards))
    }

    /// A handle usable as a [`MetadataService`] trait object.
    pub fn service(self: &Arc<Self>) -> Arc<Self> {
        Arc::clone(self)
    }

    /// The shared TafDB.
    pub fn db(&self) -> &Arc<TafDb> {
        &self.db
    }

    /// The namespace's IndexNode.
    pub fn index(&self) -> &Arc<IndexNode> {
        &self.index
    }

    /// The data service.
    pub fn data(&self) -> &Arc<DataService> {
        &self.data
    }

    /// The cluster configuration.
    pub fn config(&self) -> &MantleConfig {
        &self.config
    }

    /// The inode allocator (used by the populator).
    pub(crate) fn ids(&self) -> &IdAllocator {
        &self.ids
    }

    /// Changes a directory's permission mask: replicated through the
    /// IndexNode (which invalidates affected cache prefixes, §5.1.2) and
    /// persisted in the TafDB entry row.
    pub fn setattr(
        &self,
        path: &MetaPath,
        permission: Permission,
        stats: &mut RequestCtx,
    ) -> Result<()> {
        self.ops.setattr.inc();
        let (parent, name) = stats.time(Phase::Lookup, |stats| self.resolve_parent(path, stats))?;
        stats.time(Phase::Execute, |stats| {
            // Persist in TafDB first (source of truth), then refresh the
            // IndexNode's access metadata.
            let key = entry_key(parent.id, &name);
            let updated = match self.db.get_entry(parent.id, &name, stats) {
                Some(Row::DirAccess { id, .. }) => {
                    self.db.raw_put(key, Row::DirAccess { id, permission });
                    true
                }
                _ => false,
            };
            if !updated {
                return Err(MetaError::NotFound(path.to_string()));
            }
            self.with_failover(stats, |stats| {
                self.index
                    .set_permission(parent.id, &name, permission, path, stats)
            })?;
            self.amcache.invalidate_subtree(path);
            // Aggregated permissions changed for everything underneath.
            stats.cache_invalidations += self.pcache.invalidate_subtree(path) as u32;
            Ok(())
        })
    }

    /// Logical timestamp for mtime/ctime fields.
    pub fn now(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Retries `f` across transient unavailability (IndexNode leader
    /// failover re-election windows) and injected transient faults, with
    /// bounded exponential backoff (200µs doubling, capped at 5ms).
    ///
    /// Safe to retry blindly: injected faults are request-loss only (the
    /// guarded work never ran), and multi-step operations carry a client
    /// UUID so server-side replays stay idempotent.
    fn with_failover<R>(
        &self,
        stats: &mut RequestCtx,
        f: impl FnMut(&mut RequestCtx) -> Result<R>,
    ) -> Result<R> {
        // StaleRoute: the DB's shard map moved under the op; the retry
        // re-routes against the refreshed snapshot. The engine books the
        // per-class retry stat and paces (modeled backoff plus real pacing
        // under the virtual clock, since leader re-election runs on the
        // real-time control plane).
        RetryPolicy::failover(self.config.unavailable_retries).run(
            stats,
            classify_failover,
            |_, e| {
                mantle_obs::flight::annotate_with(|| match e {
                    MetaError::Unavailable(at) => format!("failover:unavailable at={at}"),
                    MetaError::Transient { kind, at } => {
                        format!("failover:transient kind={kind} at={at}")
                    }
                    MetaError::Overloaded(at) => format!("failover:overloaded at={at}"),
                    _ => "failover:stale_route".to_string(),
                });
            },
            f,
        )
    }

    /// Installs a deterministic fault plan across every component: the
    /// IndexNode's Raft replicas (RPC + WAL + crash hooks), every TafDB
    /// shard (RPC + WAL + 2PC), and the data nodes.
    pub fn install_faults(&self, plan: &Arc<mantle_rpc::FaultPlan>) {
        self.index.install_faults(Some(plan.clone()));
        self.db.install_faults(Some(plan.clone()));
        self.data.install_faults(Some(plan.clone()));
        self.pcache_faults.install(Some(plan.clone()));
    }

    /// Removes a previously installed fault plan from every component.
    pub fn clear_faults(&self) {
        self.index.install_faults(None);
        self.db.install_faults(None);
        self.data.install_faults(None);
        self.pcache_faults.install(None);
    }

    /// The client-side path-lease cache (statistics, test inspection).
    pub fn path_cache(&self) -> &PathLeaseCache {
        &self.pcache
    }

    /// Path-lease cache statistics snapshot.
    pub fn path_cache_stats(&self) -> PathCacheStats {
        self.pcache.stats()
    }

    /// One path resolution, optionally short-circuited by the proxy-side
    /// path-lease cache (DESIGN.md §4.13) or AM-Cache (Figure 20).
    fn cached_lookup(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<ResolvedPath> {
        if self.pcache.enabled() {
            return self.leased_lookup(path, stats);
        }
        if let Some(prefix) = self.amcache.prefix_of(path) {
            if let Some(hit) = self.amcache.get(&prefix) {
                stats.cache_hits += 1;
                mantle_obs::counter("amcache_hits_total", &[]).inc();
                return Ok(ResolvedPath {
                    id: hit.pid,
                    permission: hit.permission,
                });
            }
        }
        let resolved = self.with_failover(stats, |stats| self.index.lookup(path, stats))?;
        if let Some(prefix) = self.amcache.prefix_of(path) {
            self.amcache.try_fill(
                prefix,
                CachedPrefix {
                    pid: resolved.id,
                    permission: resolved.permission,
                },
                || true,
            );
        }
        Ok(resolved)
    }

    /// Resolution through the path-lease cache: a live entry answers with
    /// zero RPCs; an expired one is revalidated with a single version-check
    /// RPC; a miss resolves fully and installs a lease. The `LeaseExpire`
    /// fault demotes live hits and `StaleRead` vetoes matching
    /// revalidations — both only *add* coherence work, never skip it.
    fn leased_lookup(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<ResolvedPath> {
        let ttl = self.pcache.config().lease_ttl;
        let force_expire = self
            .pcache_faults
            .get()
            .is_some_and(|plan| plan.lease_expires("proxy"));
        match self.pcache.probe(path, force_expire) {
            LeaseProbe::Hit(lease) => {
                stats.cache_hits += 1;
                Ok(ResolvedPath {
                    id: lease.pid,
                    permission: lease.permission,
                })
            }
            LeaseProbe::NegativeHit => {
                stats.cache_hits += 1;
                Err(MetaError::NotFound(path.to_string()))
            }
            LeaseProbe::Expired(old) => {
                let token = self.pcache.begin();
                match self.with_failover(stats, |stats| self.index.lease_check(path, ttl, stats)) {
                    Ok(fresh) => {
                        let stale_read = self
                            .pcache_faults
                            .get()
                            .is_some_and(|plan| plan.stale_read_fires("proxy"));
                        let matched = fresh.resolved.id == old.pid
                            && fresh.version == old.version
                            && !stale_read;
                        let dropped = self.pcache.revalidated(path, matched, &fresh, token, stats);
                        if matched {
                            stats.cache_revalidations += 1;
                        } else {
                            stats.cache_invalidations += dropped as u32;
                        }
                        Ok(fresh.resolved)
                    }
                    Err(e @ MetaError::NotFound(_)) => {
                        // The directory is gone: the lease (and anything
                        // cached beneath it) is dead.
                        stats.cache_invalidations +=
                            self.pcache.revalidated_gone(path, token, stats) as u32;
                        Err(e)
                    }
                    Err(e) => Err(e),
                }
            }
            LeaseProbe::Miss | LeaseProbe::Disabled => {
                stats.cache_misses += 1;
                let token = self.pcache.begin();
                match self.with_failover(stats, |stats| self.index.lookup_leased(path, ttl, stats))
                {
                    Ok(fresh) => {
                        self.pcache.fill(path, &fresh, token, stats);
                        Ok(fresh.resolved)
                    }
                    Err(e @ MetaError::NotFound(_)) => {
                        self.pcache.fill_negative(path, token, stats);
                        Err(e)
                    }
                    Err(e) => Err(e),
                }
            }
        }
    }

    /// Resolves the parent directory of `path` and returns
    /// `(parent, leaf name)`.
    fn resolve_parent(
        &self,
        path: &MetaPath,
        stats: &mut RequestCtx,
    ) -> Result<(ResolvedPath, String)> {
        let parent = path
            .parent()
            .ok_or_else(|| MetaError::InvalidPath("operation on root".into()))?;
        let name = path.name().expect("non-root path").to_string();
        let resolved = self.cached_lookup(&parent, stats)?;
        Ok((resolved, name))
    }
}

impl MetadataService for MantleCluster {
    fn name(&self) -> &'static str {
        "mantle"
    }

    fn lookup(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<ResolvedPath> {
        self.ops.lookup.inc();
        stats.time(Phase::Lookup, |stats| self.cached_lookup(path, stats))
    }

    fn mkdir(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<InodeId> {
        self.ops.mkdir.inc();
        let (parent, name) = stats.time(Phase::Lookup, |stats| self.resolve_parent(path, stats))?;
        stats.time(Phase::Execute, |stats| {
            if !parent.permission.allows(Permission::WRITE) {
                return Err(MetaError::PermissionDenied(path.to_string()));
            }
            let id = self.ids.alloc();
            let now = self.now();
            let ops = [
                TxnOp::InsertUnique {
                    key: entry_key(parent.id, &name),
                    row: Row::DirAccess {
                        id,
                        permission: Permission::ALL,
                    },
                },
                TxnOp::Put {
                    key: attr_key(id),
                    row: Row::DirAttr(DirAttrMeta::new(now, 0)),
                },
                TxnOp::AttrUpdate {
                    dir: parent.id,
                    delta: AttrDelta {
                        nlink: 1,
                        entries: 1,
                        mtime: now,
                    },
                },
            ];
            self.db.execute(&ops, stats)?;
            // Refresh the IndexNode's access metadata (Figure 5: "TafDB
            // updates all metadata while IndexNode refreshes access data").
            self.with_failover(stats, |stats| {
                self.index
                    .insert_dir(parent.id, &name, id, Permission::ALL, stats)
            })?;
            // Scrub any cached NotFound verdict for the new directory.
            self.pcache.invalidate_exact(path);
            Ok(id)
        })
    }

    fn rmdir(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<()> {
        self.ops.rmdir.inc();
        let (dir, parent, name) = stats.time(Phase::Lookup, |stats| {
            let dir = self.with_failover(stats, |stats| self.index.lookup(path, stats))?;
            let (parent, name) = self.resolve_parent(path, stats)?;
            Ok::<_, MetaError>((dir, parent, name))
        })?;
        stats.time(Phase::Execute, |stats| {
            if !parent.permission.allows(Permission::WRITE) {
                return Err(MetaError::PermissionDenied(path.to_string()));
            }
            let now = self.now();
            let ops = [
                // Exclusive lock on the attr row first; ExpectEmptyDir then
                // checks emptiness with creations excluded.
                TxnOp::Delete {
                    key: attr_key(dir.id),
                },
                TxnOp::ExpectEmptyDir { dir: dir.id },
                TxnOp::Delete {
                    key: entry_key(parent.id, &name),
                },
                TxnOp::AttrUpdate {
                    dir: parent.id,
                    delta: AttrDelta {
                        nlink: -1,
                        entries: -1,
                        mtime: now,
                    },
                },
            ];
            self.db.execute(&ops, stats)?;
            self.with_failover(stats, |stats| {
                self.index.remove_dir(parent.id, &name, path, stats)
            })?;
            self.amcache.invalidate_subtree(path);
            stats.cache_invalidations += self.pcache.invalidate_subtree(path) as u32;
            Ok(())
        })
    }

    fn create(&self, path: &MetaPath, size: u64, stats: &mut RequestCtx) -> Result<InodeId> {
        self.ops.create.inc();
        let (parent, name) = stats.time(Phase::Lookup, |stats| self.resolve_parent(path, stats))?;
        stats.time(Phase::Execute, |stats| {
            if !parent.permission.allows(Permission::WRITE) {
                return Err(MetaError::PermissionDenied(path.to_string()));
            }
            let id = self.ids.alloc();
            let now = self.now();
            let ops = [
                TxnOp::InsertUnique {
                    key: entry_key(parent.id, &name),
                    row: Row::Object(ObjectMeta {
                        pid: parent.id,
                        name: name.clone(),
                        id,
                        size,
                        blob: 0,
                        ctime: now,
                        permission: Permission::ALL,
                    }),
                },
                TxnOp::AttrUpdate {
                    dir: parent.id,
                    delta: AttrDelta {
                        nlink: 0,
                        entries: 1,
                        mtime: now,
                    },
                },
            ];
            self.db.execute(&ops, stats)?;
            Ok(id)
        })
    }

    fn delete(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<()> {
        self.ops.delete.inc();
        let (parent, name) = stats.time(Phase::Lookup, |stats| self.resolve_parent(path, stats))?;
        stats.time(Phase::Execute, |stats| {
            // Type check (an object, not a directory) before deleting.
            self.db.get_object(parent.id, &name, stats)?;
            let now = self.now();
            let ops = [
                TxnOp::Delete {
                    key: entry_key(parent.id, &name),
                },
                TxnOp::AttrUpdate {
                    dir: parent.id,
                    delta: AttrDelta {
                        nlink: 0,
                        entries: -1,
                        mtime: now,
                    },
                },
            ];
            self.db.execute(&ops, stats)?;
            Ok(())
        })
    }

    fn objstat(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<ObjectMeta> {
        self.ops.objstat.inc();
        let (parent, name) = stats.time(Phase::Lookup, |stats| self.resolve_parent(path, stats))?;
        stats.time(Phase::Execute, |stats| {
            if !parent.permission.allows(Permission::READ) {
                return Err(MetaError::PermissionDenied(path.to_string()));
            }
            self.db.get_object(parent.id, &name, stats)
        })
    }

    fn dirstat(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<DirStat> {
        self.ops.dirstat.inc();
        let dir = stats.time(Phase::Lookup, |stats| self.cached_lookup(path, stats))?;
        stats.time(Phase::Execute, |stats| {
            let attrs = self.db.dir_stat(dir.id, stats)?;
            Ok(DirStat {
                id: dir.id,
                attrs,
                permission: dir.permission,
            })
        })
    }

    fn readdir(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<Vec<DirEntry>> {
        self.ops.readdir.inc();
        let dir = stats.time(Phase::Lookup, |stats| self.cached_lookup(path, stats))?;
        stats.time(Phase::Execute, |stats| {
            if !dir.permission.allows(Permission::READ) {
                return Err(MetaError::PermissionDenied(path.to_string()));
            }
            Ok(self.db.readdir(dir.id, stats))
        })
    }

    fn list(
        &self,
        path: &MetaPath,
        start_after: Option<&str>,
        limit: usize,
        stats: &mut RequestCtx,
    ) -> Result<(Vec<DirEntry>, bool)> {
        self.ops.list.inc();
        let dir = stats.time(Phase::Lookup, |stats| self.cached_lookup(path, stats))?;
        stats.time(Phase::Execute, |stats| {
            if !dir.permission.allows(Permission::READ) {
                return Err(MetaError::PermissionDenied(path.to_string()));
            }
            Ok(self.db.readdir_page(dir.id, start_after, limit, stats))
        })
    }

    fn rename_dir(&self, src: &MetaPath, dst: &MetaPath, stats: &mut RequestCtx) -> Result<()> {
        self.ops.rename.inc();
        // Each retry of the whole operation keeps the same client UUID so a
        // lock left by an earlier (failed) attempt is re-entered (§5.3).
        let uuid = ClientUuid::generate();
        // The engine's rename pacing charges the modeled backoff to this
        // client's timeline and yields so the conflicting client can release
        // the lock in real time (or plain yields when RTT is zero).
        RetryPolicy::rename(self.config.rename_retries, self.config.sim.rtt_micros == 0).run(
            stats,
            classify_rename,
            |_, e| {
                if matches!(
                    e,
                    MetaError::RenameLocked(_) | MetaError::TxnConflict { .. }
                ) {
                    mantle_obs::flight::annotate("rename:lock_conflict");
                }
            },
            |stats| self.try_rename(src, dst, uuid, stats),
        )
    }
}

impl mantle_types::BulkLoad for MantleCluster {
    fn bulk_dir(&self, path: &MetaPath) -> InodeId {
        let mut pid = self.root;
        let mut current = MetaPath::root();
        for comp in path.components() {
            current = current.child(comp);
            match self.db.raw_get(&entry_key(pid, comp)) {
                Some(Row::DirAccess { id, .. }) => pid = id,
                Some(_) => panic!("bulk_dir crosses an object at {current}"),
                None => {
                    let id = self.ids.alloc();
                    let now = self.now();
                    self.db.raw_put(
                        entry_key(pid, comp),
                        Row::DirAccess {
                            id,
                            permission: Permission::ALL,
                        },
                    );
                    self.db
                        .raw_put(attr_key(id), Row::DirAttr(DirAttrMeta::new(now, 0)));
                    if let Some(Row::DirAttr(mut attrs)) = self.db.raw_get(&attr_key(pid)) {
                        attrs.apply_delta(&AttrDelta {
                            nlink: 1,
                            entries: 1,
                            mtime: now,
                        });
                        self.db.raw_put(attr_key(pid), Row::DirAttr(attrs));
                    }
                    self.index.raw_insert_dir(pid, comp, id, Permission::ALL);
                    pid = id;
                }
            }
        }
        pid
    }

    fn bulk_object(&self, path: &MetaPath, size: u64) {
        let parent = path.parent().expect("objects cannot be the root");
        let name = path.name().expect("non-root");
        let pid = self.bulk_dir(&parent);
        let id = self.ids.alloc();
        let now = self.now();
        let blob = self.data.raw_write(size);
        self.db.raw_put(
            entry_key(pid, name),
            Row::Object(ObjectMeta {
                pid,
                name: name.to_string(),
                id,
                size,
                blob,
                ctime: now,
                permission: Permission::ALL,
            }),
        );
        if let Some(Row::DirAttr(mut attrs)) = self.db.raw_get(&attr_key(pid)) {
            attrs.apply_delta(&AttrDelta {
                nlink: 0,
                entries: 1,
                mtime: now,
            });
            self.db.raw_put(attr_key(pid), Row::DirAttr(attrs));
        }
    }
}

impl MantleCluster {
    fn try_rename(
        &self,
        src: &MetaPath,
        dst: &MetaPath,
        uuid: ClientUuid,
        stats: &mut RequestCtx,
    ) -> Result<()> {
        // Figure 9 steps 1–7: resolution + lock + loop detection, one RPC.
        // Mantle "records zero lookup time in dirrename since it is merged
        // with loop detection" (§6.3) — charged to the LoopDetect phase.
        let grant = stats.time(Phase::LoopDetect, |stats| {
            self.with_failover(stats, |stats| {
                self.index.rename_prepare(src, dst, uuid, stats)
            })
        })?;

        stats.time(Phase::Execute, |stats| {
            let src_name = src.name().expect("non-root");
            let dst_name = dst.name().expect("non-root");
            let now = self.now();
            let mut ops = vec![
                TxnOp::Delete {
                    key: entry_key(grant.src_pid, src_name),
                },
                TxnOp::InsertUnique {
                    key: entry_key(grant.dst_pid, dst_name),
                    row: Row::DirAccess {
                        id: grant.src_id,
                        permission: grant.permission,
                    },
                },
            ];
            if grant.src_pid == grant.dst_pid {
                // Same-parent rename: entry counts are unchanged.
                ops.push(TxnOp::AttrUpdate {
                    dir: grant.src_pid,
                    delta: AttrDelta {
                        nlink: 0,
                        entries: 0,
                        mtime: now,
                    },
                });
            } else {
                ops.push(TxnOp::AttrUpdate {
                    dir: grant.src_pid,
                    delta: AttrDelta {
                        nlink: -1,
                        entries: -1,
                        mtime: now,
                    },
                });
                ops.push(TxnOp::AttrUpdate {
                    dir: grant.dst_pid,
                    delta: AttrDelta {
                        nlink: 1,
                        entries: 1,
                        mtime: now,
                    },
                });
            }
            match self.db.execute(&ops, stats) {
                Ok(_) => {
                    self.with_failover(stats, |stats| {
                        self.index.rename_commit(&grant, src, dst, uuid, stats)
                    })?;
                    self.amcache.invalidate_subtree(src);
                    // Both subtrees: sources go stale, and the destination
                    // side may hold negative verdicts for paths that exist
                    // now that the subtree moved in.
                    stats.cache_invalidations += self.pcache.invalidate_subtree(src) as u32;
                    stats.cache_invalidations += self.pcache.invalidate_subtree(dst) as u32;
                    Ok(())
                }
                Err(e) => {
                    self.with_failover(stats, |stats| {
                        self.index.rename_abort(&grant, src, uuid, stats)
                    })?;
                    Err(e)
                }
            }
        })
    }
}
