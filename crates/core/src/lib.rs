//! The Mantle metadata service (§4–§5): the paper's primary contribution.
//!
//! A [`MantleCluster`] wires together the two-layer architecture:
//!
//! * a shared, sharded [`mantle_tafdb::TafDb`] holding *all* metadata
//!   (access + attribute) of the namespace, and
//! * a per-namespace [`mantle_index::IndexNode`] holding only directory
//!   *access* metadata, replicated by Raft.
//!
//! The proxy logic in [`cluster`] implements every metadata operation with
//! the paper's division of responsibility (Figure 5):
//!
//! | operation  | lookup          | execution                            |
//! |------------|-----------------|--------------------------------------|
//! | `lookup`   | IndexNode, 1 RPC| —                                    |
//! | `objstat`  | IndexNode       | TafDB object row                     |
//! | `create`   | IndexNode       | TafDB txn (entry + parent attr)      |
//! | `delete`   | IndexNode       | TafDB txn                            |
//! | `dirstat`  | IndexNode       | TafDB attr row + delta merge         |
//! | `readdir`  | IndexNode       | TafDB directory scan                 |
//! | `mkdir`    | IndexNode       | TafDB txn, then IndexNode refresh    |
//! | `rmdir`    | IndexNode       | TafDB txn, then IndexNode refresh    |
//! | `dirrename`| merged into loop detection on IndexNode (Figure 9), then TafDB txn + IndexNode commit |
//!
//! The crate also provides the [`data::DataService`] used by the
//! application-level experiments (Figure 10b) and a [`populate::Populator`]
//! that bulk-loads synthetic namespaces without paying simulated delays.

pub mod cluster;
pub mod data;
pub mod pathcache;
pub mod populate;
pub mod region;

pub use cluster::{MantleCluster, MantleConfig};
pub use data::DataService;
pub use pathcache::{PathLeaseCache, PathLeaseConfig};
pub use populate::Populator;
pub use region::MantleRegion;
