//! Multi-namespace deployments (§7.1).
//!
//! In production, Mantle hosts many namespaces per cluster: "within each
//! cluster, all namespaces share a common TafDB deployment", while every
//! namespace gets its own IndexNode replication group, co-located on a
//! shared server pool. A [`MantleRegion`] reproduces that topology: one
//! TafDB, one data service, one region-wide inode allocator, and one
//! [`MantleCluster`] handle per namespace with a distinct root directory
//! id.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use mantle_tafdb::{attr_key, Row, TafDb};
use mantle_types::{id::IdAllocator, DirAttrMeta, InodeId, MetaError, Result};

use crate::cluster::{MantleCluster, MantleConfig};
use crate::data::DataService;

/// A cluster-wide Mantle deployment hosting many namespaces.
pub struct MantleRegion {
    config: MantleConfig,
    db: Arc<TafDb>,
    data: Arc<DataService>,
    ids: Arc<IdAllocator>,
    namespaces: RwLock<HashMap<String, Arc<MantleCluster>>>,
}

impl MantleRegion {
    /// Builds the shared substrate. `config.index` is used as the template
    /// for every namespace's IndexNode (its `root` is overridden per
    /// namespace).
    pub fn new(config: MantleConfig) -> Arc<Self> {
        Arc::new(MantleRegion {
            config,
            db: TafDb::new(config.sim, config.db),
            data: Arc::new(DataService::new(config.sim, config.data_nodes)),
            ids: Arc::new(IdAllocator::new()),
            namespaces: RwLock::new(HashMap::new()),
        })
    }

    /// Creates a namespace: allocates its root directory, bootstraps the
    /// root's attribute row in the shared TafDB, and spins up a dedicated
    /// IndexNode replication group.
    ///
    /// # Errors
    ///
    /// [`MetaError::AlreadyExists`] when the name is taken.
    pub fn create_namespace(&self, name: &str) -> Result<Arc<MantleCluster>> {
        let mut namespaces = self.namespaces.write();
        if namespaces.contains_key(name) {
            return Err(MetaError::AlreadyExists(format!("namespace {name}")));
        }
        let root = self.ids.alloc();
        self.db
            .raw_put(attr_key(root), Row::DirAttr(DirAttrMeta::new(0, 0)));
        let cluster = MantleCluster::with_shared(
            self.config,
            Arc::clone(&self.db),
            Arc::clone(&self.data),
            Arc::clone(&self.ids),
            root,
        );
        namespaces.insert(name.to_string(), Arc::clone(&cluster));
        Ok(cluster)
    }

    /// Looks up an existing namespace by name.
    pub fn namespace(&self, name: &str) -> Option<Arc<MantleCluster>> {
        self.namespaces.read().get(name).cloned()
    }

    /// Names of all hosted namespaces.
    pub fn namespace_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.namespaces.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// The shared TafDB.
    pub fn db(&self) -> &Arc<TafDb> {
        &self.db
    }

    /// The shared data service.
    pub fn data(&self) -> &Arc<DataService> {
        &self.data
    }

    /// The root directory id of a namespace (diagnostics).
    pub fn namespace_root(&self, name: &str) -> Option<InodeId> {
        self.namespaces.read().get(name).map(|c| c.root())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantle_types::RequestCtx;
    use mantle_types::{BulkLoad, MetaPath, MetadataService, SimConfig};

    fn p(s: &str) -> MetaPath {
        MetaPath::parse(s).unwrap()
    }

    fn region() -> Arc<MantleRegion> {
        MantleRegion::new(MantleConfig::with_sim(SimConfig::instant(), 4))
    }

    #[test]
    fn namespaces_share_tafdb_but_are_isolated() {
        let region = region();
        let ns_a = region.create_namespace("tenant-a").unwrap();
        let ns_b = region.create_namespace("tenant-b").unwrap();
        assert_ne!(ns_a.root(), ns_b.root());

        let mut stats = RequestCtx::new();
        // The same path in both namespaces holds different content.
        ns_a.mkdir(&p("/data"), &mut stats).unwrap();
        ns_a.create(&p("/data/obj"), 111, &mut stats).unwrap();
        ns_b.mkdir(&p("/data"), &mut stats).unwrap();
        ns_b.create(&p("/data/obj"), 222, &mut stats).unwrap();

        assert_eq!(ns_a.objstat(&p("/data/obj"), &mut stats).unwrap().size, 111);
        assert_eq!(ns_b.objstat(&p("/data/obj"), &mut stats).unwrap().size, 222);

        // Entries of both namespaces live in one shared MetaTable.
        assert!(Arc::ptr_eq(ns_a.db(), ns_b.db()));
        assert!(region.db().total_rows() >= 6);

        // Deleting in one namespace does not disturb the other.
        ns_a.delete(&p("/data/obj"), &mut stats).unwrap();
        assert!(ns_a.objstat(&p("/data/obj"), &mut stats).is_err());
        assert_eq!(ns_b.objstat(&p("/data/obj"), &mut stats).unwrap().size, 222);
    }

    #[test]
    fn duplicate_namespace_rejected_and_lookup_by_name_works() {
        let region = region();
        region.create_namespace("ns").unwrap();
        assert!(matches!(
            region.create_namespace("ns"),
            Err(MetaError::AlreadyExists(_))
        ));
        assert!(region.namespace("ns").is_some());
        assert!(region.namespace("ghost").is_none());
        assert_eq!(region.namespace_names(), vec!["ns"]);
        assert!(region.namespace_root("ns").unwrap().raw() > 1);
    }

    #[test]
    fn bulk_load_and_rename_respect_namespace_roots() {
        let region = region();
        let ns_a = region.create_namespace("a").unwrap();
        let ns_b = region.create_namespace("b").unwrap();
        let mut stats = RequestCtx::new();

        ns_a.bulk_dir(&p("/x/y/z"));
        ns_a.bulk_object(&p("/x/y/z/o"), 5);
        assert!(
            ns_b.lookup(&p("/x"), &mut stats).is_err(),
            "no cross-namespace leakage"
        );

        ns_a.mkdir(&p("/dst"), &mut stats).unwrap();
        ns_a.rename_dir(&p("/x/y"), &p("/dst/y2"), &mut stats)
            .unwrap();
        assert_eq!(ns_a.objstat(&p("/dst/y2/z/o"), &mut stats).unwrap().size, 5);
        assert!(ns_b.lookup(&p("/dst"), &mut stats).is_err());
    }

    #[test]
    fn concurrent_tenants_do_not_interfere() {
        let region = region();
        let tenants: Vec<_> = (0..3)
            .map(|i| region.create_namespace(&format!("t{i}")).unwrap())
            .collect();
        std::thread::scope(|s| {
            for (i, ns) in tenants.iter().enumerate() {
                s.spawn(move || {
                    let mut stats = RequestCtx::new();
                    ns.mkdir(&p("/w"), &mut stats).unwrap();
                    for j in 0..30 {
                        ns.create(&p(&format!("/w/o{j}")), (i * 100 + j) as u64, &mut stats)
                            .unwrap();
                    }
                });
            }
        });
        let mut stats = RequestCtx::new();
        for ns in &tenants {
            assert_eq!(ns.dirstat(&p("/w"), &mut stats).unwrap().attrs.entries, 30);
        }
    }
}
