//! The data service: simulated object storage.
//!
//! §3 characterizes data access for small objects as "a single RPC plus
//! tens of microseconds for device access". The data service models exactly
//! that: a pool of storage nodes, one RPC to a node chosen round-robin, and
//! one device-latency injection per access. Object *contents* are not
//! materialized — experiments only need the timing and the size bookkeeping.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use mantle_rpc::SimNode;
use mantle_types::{MetaError, RequestCtx, Result, SimConfig};

/// A pool of simulated data servers.
pub struct DataService {
    nodes: Vec<SimNode>,
    blobs: Mutex<HashMap<u64, u64>>,
    next_blob: AtomicU64,
    rr: AtomicU64,
    config: SimConfig,
}

impl DataService {
    /// Creates a pool of `n_nodes` data servers.
    pub fn new(config: SimConfig, n_nodes: usize) -> Self {
        assert!(n_nodes >= 1);
        DataService {
            nodes: (0..n_nodes)
                .map(|i| SimNode::new(format!("data{i}"), config.db_node_permits, config))
                .collect(),
            blobs: Mutex::new(HashMap::new()),
            next_blob: AtomicU64::new(1),
            rr: AtomicU64::new(0),
            config,
        }
    }

    fn node(&self) -> &SimNode {
        let i = self.rr.fetch_add(1, Ordering::Relaxed) as usize;
        &self.nodes[i % self.nodes.len()]
    }

    /// Installs (or clears) a fault plan on every data node. Data-path
    /// RPCs use the infallible wrappers, so injected drops/timeouts are
    /// absorbed as internal retries rather than surfaced to callers.
    pub fn install_faults(&self, plan: Option<std::sync::Arc<mantle_rpc::FaultPlan>>) {
        for n in &self.nodes {
            n.set_faults(plan.clone());
        }
    }

    /// Writes an object of `size` bytes, returning its blob handle.
    pub fn write(&self, size: u64, stats: &mut RequestCtx) -> u64 {
        let blob = self.next_blob.fetch_add(1, Ordering::Relaxed);
        self.node().rpc(stats, || {
            mantle_rpc::device_access(&self.config);
            self.blobs.lock().insert(blob, size);
        });
        blob
    }

    /// Reads an object by blob handle, returning its size.
    ///
    /// # Errors
    ///
    /// [`MetaError::NotFound`] for an unknown handle.
    pub fn read(&self, blob: u64, stats: &mut RequestCtx) -> Result<u64> {
        self.node().rpc(stats, || {
            mantle_rpc::device_access(&self.config);
            self.blobs
                .lock()
                .get(&blob)
                .copied()
                .ok_or_else(|| MetaError::NotFound(format!("blob {blob}")))
        })
    }

    /// Deletes a blob. Unknown handles are ignored (idempotent GC-style
    /// deletion, as in real object stores).
    pub fn delete(&self, blob: u64, stats: &mut RequestCtx) {
        self.node().rpc(stats, || {
            mantle_rpc::device_access(&self.config);
            self.blobs.lock().remove(&blob);
        });
    }

    /// Registers a blob without paying simulated delays (bulk population).
    pub fn raw_write(&self, size: u64) -> u64 {
        let blob = self.next_blob.fetch_add(1, Ordering::Relaxed);
        self.blobs.lock().insert(blob, size);
        blob
    }

    /// Number of stored blobs.
    pub fn len(&self) -> usize {
        self.blobs.lock().len()
    }

    /// Whether no blobs are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_delete_cycle() {
        let data = DataService::new(SimConfig::instant(), 4);
        let mut stats = RequestCtx::new();
        let blob = data.write(4096, &mut stats);
        assert_eq!(data.read(blob, &mut stats).unwrap(), 4096);
        data.delete(blob, &mut stats);
        assert!(matches!(
            data.read(blob, &mut stats),
            Err(MetaError::NotFound(_))
        ));
        // 1 RPC per access.
        assert_eq!(stats.rpcs, 4);
    }

    #[test]
    fn raw_write_skips_accounting() {
        let data = DataService::new(SimConfig::instant(), 1);
        let blob = data.raw_write(100);
        let mut stats = RequestCtx::new();
        assert_eq!(data.read(blob, &mut stats).unwrap(), 100);
        assert_eq!(data.len(), 1);
    }
}
