//! Client-side path-lease cache (DESIGN.md §4.13).
//!
//! A bounded LRU of `path → (pid, permission, ns_version)` consulted by the
//! proxy *before* any IndexNode/TafDB resolution, so warm lookups cost zero
//! round trips. Coherence is layered:
//!
//! * **Synchronous invalidation** — every mutation through the same proxy
//!   drops the affected subtree right after its commit, mirroring the
//!   AM-Cache sites. A client never observes its own rename stale.
//! * **Versioned leases** — every entry carries the leaf's namespace
//!   version (bumped on the replicated commit path of rename/chmod) and an
//!   expiry stamped on the simulated clock. An expired entry is not
//!   dropped: it is *revalidated* with a single version-check RPC that
//!   re-resolves the full path server-side. A matching `(pid, version)`
//!   renews the lease; a mismatch invalidates the whole cached subtree
//!   (renames move subtrees, §5.2) before the fresh result is re-inserted.
//! * **Negative entries** — `NotFound` resolutions are cached under a
//!   shorter TTL so repeated misses also skip the network; creations
//!   scrub the exact path so a new directory is visible immediately.
//!
//! The cache is inert unless `MANTLE_PATH_CACHE` opts in: default-off keeps
//! every cache-off latency pin byte-identical (zero extra RPCs, zero clock
//! charges, zero fault-roll consumption).

use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

use parking_lot::Mutex;

use mantle_sync::PrefixTree;
use mantle_types::{
    clock::{self, SimInstant},
    InodeId,
    LeasedPath,
    MetaPath,
    OpStats,
    Permission,
    RetryClass, //
};

/// Path-lease cache configuration.
#[derive(Clone, Copy, Debug)]
pub struct PathLeaseConfig {
    /// Master switch; `false` makes every probe return
    /// [`LeaseProbe::Disabled`] without touching any state.
    pub enabled: bool,
    /// Maximum resident entries (positive + negative) before LRU eviction.
    pub capacity: usize,
    /// Positive-entry lease duration on the simulated clock.
    pub lease_ttl: Duration,
    /// Negative-entry lease duration (shorter: absence is cheap to refetch
    /// and staleness in the creation direction is the annoying kind).
    pub negative_ttl: Duration,
}

impl Default for PathLeaseConfig {
    fn default() -> Self {
        PathLeaseConfig {
            enabled: false,
            capacity: 16_384,
            lease_ttl: Duration::from_millis(500),
            negative_ttl: Duration::from_millis(50),
        }
    }
}

impl PathLeaseConfig {
    /// Resolves the configuration from the environment:
    /// `MANTLE_PATH_CACHE` (`on`/`1`/`true` enables; default off),
    /// `MANTLE_PATH_CACHE_CAPACITY`, `MANTLE_PATH_CACHE_TTL_MS`, and
    /// `MANTLE_PATH_CACHE_NEG_TTL_MS`.
    pub fn from_env() -> Self {
        let mut config = PathLeaseConfig::default();
        if let Ok(v) = std::env::var("MANTLE_PATH_CACHE") {
            config.enabled =
                v == "1" || v.eq_ignore_ascii_case("on") || v.eq_ignore_ascii_case("true");
        }
        if let Some(n) = env_u64("MANTLE_PATH_CACHE_CAPACITY") {
            config.capacity = (n as usize).max(1);
        }
        if let Some(ms) = env_u64("MANTLE_PATH_CACHE_TTL_MS") {
            config.lease_ttl = Duration::from_millis(ms);
        }
        if let Some(ms) = env_u64("MANTLE_PATH_CACHE_NEG_TTL_MS") {
            config.negative_ttl = Duration::from_millis(ms);
        }
        config
    }

    /// An enabled configuration with the default bounds (tests).
    pub fn enabled() -> Self {
        PathLeaseConfig {
            enabled: true,
            ..PathLeaseConfig::default()
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// One cached positive resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CachedLease {
    /// The directory's id.
    pub pid: InodeId,
    /// Aggregated permission along the path.
    pub permission: Permission,
    /// Leaf namespace version the lease was granted against.
    pub version: u64,
}

#[derive(Clone, Copy, Debug)]
enum LeaseValue {
    Positive(CachedLease),
    Negative,
}

struct LeaseEntry {
    value: LeaseValue,
    /// Expiry on the simulated clock of the *stamping* thread. Timelines
    /// are per-thread under the virtual clock, so expiry is a heuristic
    /// refresh trigger — correctness never rests on it (synchronous
    /// invalidation + revalidation do).
    expires: SimInstant,
    /// LRU sequence; key into `order`.
    seq: u64,
}

/// The outcome of one cache probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeaseProbe {
    /// The cache is disabled; resolve as if it did not exist.
    Disabled,
    /// No entry; resolve fully and [`PathLeaseCache::fill`] the result.
    Miss,
    /// A live positive entry: resolution complete, zero RPCs.
    Hit(CachedLease),
    /// A live negative entry: `NotFound`, zero RPCs.
    NegativeHit,
    /// An expired (or fault-expired) positive entry: revalidate it with a
    /// single version-check RPC and report the verdict back via
    /// [`PathLeaseCache::revalidated`].
    Expired(CachedLease),
}

/// Point-in-time cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathCacheStats {
    /// Resident entries (positive + negative).
    pub entries: usize,
    /// Probe hits (positive + negative).
    pub hits: u64,
    /// Probe misses.
    pub misses: u64,
    /// Leases renewed by a matching version check.
    pub revalidations: u64,
    /// Entries dropped by subtree/exact invalidation.
    pub invalidations: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Fills rejected because an invalidation raced the resolution.
    pub rejected_fills: u64,
}

struct Inner {
    map: HashMap<MetaPath, LeaseEntry>,
    /// LRU order: seq → path. `BTreeMap` keeps eviction O(log n).
    order: BTreeMap<u64, MetaPath>,
    /// Mirror of every cached path for subtree invalidation.
    tree: PrefixTree,
    next_seq: u64,
    /// Invalidation epoch: bumped on every subtree/exact invalidation. A
    /// fill carries the epoch snapshotted *before* its resolution RPC and
    /// is dropped when the epoch moved — the resolved value may predate a
    /// mutation that already ran its synchronous invalidation (the same
    /// race the server-side cache closes with its RemovalList timestamp).
    epoch: u64,
    hits: u64,
    misses: u64,
    revalidations: u64,
    invalidations: u64,
    evictions: u64,
    rejected_fills: u64,
}

impl Inner {
    /// Books a rejected fill: the cache-wide counter plus the op's own
    /// [`RetryClass::RejectedFill`] stat, so per-op aggregates can tell
    /// which requests raced an invalidation.
    fn reject_fill(&mut self, stats: &mut OpStats) {
        self.rejected_fills += 1;
        stats.note_retry(RetryClass::RejectedFill);
    }

    fn touch(&mut self, path: &MetaPath) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(e) = self.map.get_mut(path) {
            self.order.remove(&e.seq);
            e.seq = seq;
            self.order.insert(seq, path.clone());
        }
    }

    fn remove(&mut self, path: &MetaPath) -> bool {
        match self.map.remove(path) {
            Some(e) => {
                self.order.remove(&e.seq);
                self.tree.remove(path);
                true
            }
            None => false,
        }
    }

    fn insert(&mut self, path: MetaPath, value: LeaseValue, expires: SimInstant) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(prev) = self.map.insert(
            path.clone(),
            LeaseEntry {
                value,
                expires,
                seq,
            },
        ) {
            self.order.remove(&prev.seq);
        } else {
            self.tree.insert(&path);
        }
        self.order.insert(seq, path);
    }

    fn invalidate_subtree_locked(&mut self, path: &MetaPath, metrics: &PathCacheMetrics) -> usize {
        self.epoch += 1;
        let stale = self.tree.remove_subtree(path);
        for p in &stale {
            if let Some(e) = self.map.remove(p) {
                self.order.remove(&e.seq);
            }
        }
        let n = stale.len();
        if n > 0 {
            self.invalidations += n as u64;
            metrics.invalidations.add(n as u64);
        }
        n
    }

    fn evict_to_capacity(&mut self, capacity: usize) {
        while self.map.len() > capacity {
            let Some((&seq, _)) = self.order.iter().next() else {
                return;
            };
            let path = self.order.remove(&seq).expect("seq present");
            self.map.remove(&path);
            self.tree.remove(&path);
            self.evictions += 1;
        }
    }
}

/// The per-client path-lease cache. One instance per proxy; shared by every
/// client thread driving that proxy (single short mutex on the probe path).
pub struct PathLeaseCache {
    config: PathLeaseConfig,
    inner: Mutex<Inner>,
    metrics: PathCacheMetrics,
}

/// Obs handles, created once so the probe hot path stays cheap.
struct PathCacheMetrics {
    hits: mantle_obs::Counter,
    misses: mantle_obs::Counter,
    revalidations: mantle_obs::Counter,
    invalidations: mantle_obs::Counter,
}

impl PathCacheMetrics {
    fn new(system: &str) -> Self {
        let c = |name: &'static str| mantle_obs::counter(name, &[("system", system)]);
        PathCacheMetrics {
            hits: c("path_cache_hits_total"),
            misses: c("path_cache_misses_total"),
            revalidations: c("path_cache_revalidations_total"),
            invalidations: c("path_cache_invalidations_total"),
        }
    }
}

impl PathLeaseCache {
    /// Creates a cache for the proxy of `system` (the metric label).
    pub fn new(config: PathLeaseConfig, system: &str) -> Self {
        PathLeaseCache {
            config,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                tree: PrefixTree::new(),
                next_seq: 0,
                epoch: 0,
                hits: 0,
                misses: 0,
                revalidations: 0,
                invalidations: 0,
                evictions: 0,
                rejected_fills: 0,
            }),
            metrics: PathCacheMetrics::new(system),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PathLeaseConfig {
        &self.config
    }

    /// Whether the cache participates in resolution at all.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// Probes the cache. `force_expire` (the `LeaseExpire` fault) demotes a
    /// live positive hit into [`LeaseProbe::Expired`], forcing the
    /// revalidation round trip without ever skipping a coherence step.
    pub fn probe(&self, path: &MetaPath, force_expire: bool) -> LeaseProbe {
        if !self.config.enabled {
            return LeaseProbe::Disabled;
        }
        let now = clock::now();
        let mut inner = self.inner.lock();
        let Some(entry) = inner.map.get(path) else {
            inner.misses += 1;
            self.metrics.misses.inc();
            return LeaseProbe::Miss;
        };
        let expired = now > entry.expires;
        let probe = match entry.value {
            LeaseValue::Positive(lease) if !expired && !force_expire => LeaseProbe::Hit(lease),
            LeaseValue::Positive(lease) => LeaseProbe::Expired(lease),
            LeaseValue::Negative if !expired => LeaseProbe::NegativeHit,
            LeaseValue::Negative => {
                // Expired absence is not worth a revalidation RPC: drop it
                // and let the full resolve refresh the verdict.
                inner.remove(path);
                inner.misses += 1;
                self.metrics.misses.inc();
                return LeaseProbe::Miss;
            }
        };
        match probe {
            LeaseProbe::Hit(_) | LeaseProbe::NegativeHit => {
                inner.hits += 1;
                self.metrics.hits.inc();
                inner.touch(path);
            }
            _ => {}
        }
        probe
    }

    /// Snapshots the invalidation epoch. Call *before* issuing the
    /// resolution RPC and pass the token to the fill: a fill whose token is
    /// stale is dropped, because a mutation committed (and ran its
    /// synchronous invalidation) while the resolution was in flight.
    pub fn begin(&self) -> u64 {
        if !self.config.enabled {
            return 0;
        }
        self.inner.lock().epoch
    }

    /// Caches a fresh positive resolution obtained under `token`.
    pub fn fill(&self, path: &MetaPath, lease: &LeasedPath, token: u64, stats: &mut OpStats) {
        if !self.config.enabled {
            return;
        }
        let expires = clock::now() + lease.lease_ttl;
        let mut inner = self.inner.lock();
        if inner.epoch != token {
            inner.reject_fill(stats);
            return;
        }
        inner.insert(
            path.clone(),
            LeaseValue::Positive(CachedLease {
                pid: lease.resolved.id,
                permission: lease.resolved.permission,
                version: lease.version,
            }),
            expires,
        );
        inner.evict_to_capacity(self.config.capacity);
    }

    /// Caches a fresh `NotFound` verdict (obtained under `token`) with the
    /// negative TTL.
    pub fn fill_negative(&self, path: &MetaPath, token: u64, stats: &mut OpStats) {
        if !self.config.enabled {
            return;
        }
        let expires = clock::now() + self.config.negative_ttl;
        let mut inner = self.inner.lock();
        if inner.epoch != token {
            inner.reject_fill(stats);
            return;
        }
        inner.insert(path.clone(), LeaseValue::Negative, expires);
        inner.evict_to_capacity(self.config.capacity);
    }

    /// Applies a revalidation verdict obtained under `token`: `matched`
    /// renews the lease in place; a mismatch drops the whole cached subtree
    /// (renames move subtrees) and re-inserts the fresh result. Returns the
    /// number of entries invalidated. A stale token skips the renewal /
    /// re-insert (the verdict may predate a racing mutation) but a mismatch
    /// still drops the subtree — removal is always safe.
    pub fn revalidated(
        &self,
        path: &MetaPath,
        matched: bool,
        fresh: &LeasedPath,
        token: u64,
        stats: &mut OpStats,
    ) -> usize {
        if !self.config.enabled {
            return 0;
        }
        let expires = clock::now() + fresh.lease_ttl;
        let mut inner = self.inner.lock();
        if matched {
            inner.revalidations += 1;
            self.metrics.revalidations.inc();
            if inner.epoch != token {
                inner.reject_fill(stats);
                return 0;
            }
            if let Some(e) = inner.map.get_mut(path) {
                e.value = LeaseValue::Positive(CachedLease {
                    pid: fresh.resolved.id,
                    permission: fresh.resolved.permission,
                    version: fresh.version,
                });
                e.expires = expires;
            }
            inner.touch(path);
            0
        } else {
            let n = inner.invalidate_subtree_locked(path, &self.metrics);
            mantle_obs::flight::annotate_with(|| {
                format!("pathcache:revalidate_mismatch path={path} dropped={n}")
            });
            // Our own invalidation just bumped the epoch; only a *foreign*
            // bump between `token` and entry makes the fresh value suspect.
            if inner.epoch == token + 1 {
                inner.insert(
                    path.clone(),
                    LeaseValue::Positive(CachedLease {
                        pid: fresh.resolved.id,
                        permission: fresh.resolved.permission,
                        version: fresh.version,
                    }),
                    expires,
                );
                inner.evict_to_capacity(self.config.capacity);
            } else {
                inner.reject_fill(stats);
            }
            n
        }
    }

    /// Handles a revalidation (obtained under `token`) that came back
    /// `NotFound`: the directory is gone, so the subtree drops, and a
    /// negative verdict is installed unless a foreign invalidation raced
    /// the check. Returns the number of entries invalidated.
    pub fn revalidated_gone(&self, path: &MetaPath, token: u64, stats: &mut OpStats) -> usize {
        if !self.config.enabled {
            return 0;
        }
        let expires = clock::now() + self.config.negative_ttl;
        let mut inner = self.inner.lock();
        let n = inner.invalidate_subtree_locked(path, &self.metrics);
        if inner.epoch == token + 1 {
            inner.insert(path.clone(), LeaseValue::Negative, expires);
            inner.evict_to_capacity(self.config.capacity);
        } else {
            inner.reject_fill(stats);
        }
        n
    }

    /// Drops every cached entry under `path` (inclusive); returns how many
    /// were removed. Always advances the epoch, so in-flight resolutions
    /// that may predate the mutation cannot install their result.
    pub fn invalidate_subtree(&self, path: &MetaPath) -> usize {
        if !self.config.enabled {
            return 0;
        }
        self.inner
            .lock()
            .invalidate_subtree_locked(path, &self.metrics)
    }

    /// Drops the exact entry for `path` (creation scrubbing a stale
    /// negative verdict); returns whether one existed. Always advances the
    /// epoch.
    pub fn invalidate_exact(&self, path: &MetaPath) -> bool {
        if !self.config.enabled {
            return false;
        }
        let mut inner = self.inner.lock();
        inner.epoch += 1;
        let removed = inner.remove(path);
        if removed {
            inner.invalidations += 1;
            self.metrics.invalidations.inc();
        }
        removed
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> PathCacheStats {
        let inner = self.inner.lock();
        PathCacheStats {
            entries: inner.map.len(),
            hits: inner.hits,
            misses: inner.misses,
            revalidations: inner.revalidations,
            invalidations: inner.invalidations,
            evictions: inner.evictions,
            rejected_fills: inner.rejected_fills,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantle_types::ResolvedPath;

    fn p(s: &str) -> MetaPath {
        MetaPath::parse(s).unwrap()
    }

    fn lease(id: u64, version: u64, ttl_ms: u64) -> LeasedPath {
        LeasedPath {
            resolved: ResolvedPath {
                id: InodeId(id),
                permission: Permission::ALL,
            },
            version,
            lease_ttl: Duration::from_millis(ttl_ms),
        }
    }

    fn cache(capacity: usize) -> PathLeaseCache {
        PathLeaseCache::new(
            PathLeaseConfig {
                capacity,
                ..PathLeaseConfig::enabled()
            },
            "test",
        )
    }

    #[test]
    fn disabled_cache_is_inert() {
        let c = PathLeaseCache::new(PathLeaseConfig::default(), "test");
        assert_eq!(c.probe(&p("/a"), false), LeaseProbe::Disabled);
        c.fill(&p("/a"), &lease(1, 1, 1000), c.begin(), &mut OpStats::new());
        assert_eq!(c.probe(&p("/a"), false), LeaseProbe::Disabled);
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn fill_then_hit() {
        let c = cache(8);
        assert_eq!(c.probe(&p("/a/b"), false), LeaseProbe::Miss);
        c.fill(
            &p("/a/b"),
            &lease(7, 3, 1_000),
            c.begin(),
            &mut OpStats::new(),
        );
        match c.probe(&p("/a/b"), false) {
            LeaseProbe::Hit(l) => {
                assert_eq!(l.pid, InodeId(7));
                assert_eq!(l.version, 3);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn expiry_demotes_to_revalidation() {
        let c = cache(8);
        c.fill(&p("/a"), &lease(7, 1, 1), c.begin(), &mut OpStats::new());
        clock::sleep(Duration::from_millis(5));
        assert!(matches!(c.probe(&p("/a"), false), LeaseProbe::Expired(_)));
        // A matching revalidation renews the lease in place.
        assert_eq!(
            c.revalidated(
                &p("/a"),
                true,
                &lease(7, 1, 1_000),
                c.begin(),
                &mut OpStats::new()
            ),
            0
        );
        assert!(matches!(c.probe(&p("/a"), false), LeaseProbe::Hit(_)));
        assert_eq!(c.stats().revalidations, 1);
    }

    #[test]
    fn force_expire_fault_demotes_live_entry() {
        let c = cache(8);
        c.fill(
            &p("/a"),
            &lease(7, 1, 60_000),
            c.begin(),
            &mut OpStats::new(),
        );
        assert!(matches!(c.probe(&p("/a"), true), LeaseProbe::Expired(_)));
    }

    #[test]
    fn mismatch_invalidates_subtree_and_reinserts() {
        let c = cache(8);
        c.fill(&p("/a"), &lease(1, 1, 1), c.begin(), &mut OpStats::new());
        c.fill(
            &p("/a/b"),
            &lease(2, 1, 60_000),
            c.begin(),
            &mut OpStats::new(),
        );
        c.fill(
            &p("/a/b/c"),
            &lease(3, 1, 60_000),
            c.begin(),
            &mut OpStats::new(),
        );
        c.fill(
            &p("/x"),
            &lease(9, 1, 60_000),
            c.begin(),
            &mut OpStats::new(),
        );
        clock::sleep(Duration::from_millis(5));
        // /a was renamed elsewhere: version check mismatches, the whole
        // subtree drops, the fresh mapping is re-cached.
        let dropped = c.revalidated(
            &p("/a"),
            false,
            &lease(11, 2, 60_000),
            c.begin(),
            &mut OpStats::new(),
        );
        assert_eq!(dropped, 3);
        assert!(matches!(c.probe(&p("/a/b"), false), LeaseProbe::Miss));
        assert!(matches!(c.probe(&p("/x"), false), LeaseProbe::Hit(_)));
        match c.probe(&p("/a"), false) {
            LeaseProbe::Hit(l) => assert_eq!((l.pid, l.version), (InodeId(11), 2)),
            other => panic!("expected fresh hit, got {other:?}"),
        }
        assert_eq!(c.stats().invalidations, 3);
    }

    #[test]
    fn negative_entries_serve_not_found_then_expire() {
        let c = PathLeaseCache::new(
            PathLeaseConfig {
                negative_ttl: Duration::from_millis(2),
                ..PathLeaseConfig::enabled()
            },
            "test",
        );
        c.fill_negative(&p("/ghost"), c.begin(), &mut OpStats::new());
        assert_eq!(c.probe(&p("/ghost"), false), LeaseProbe::NegativeHit);
        clock::sleep(Duration::from_millis(5));
        // Expired absence is a plain miss, not a revalidation.
        assert_eq!(c.probe(&p("/ghost"), false), LeaseProbe::Miss);
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn creation_scrubs_negative_entry() {
        let c = cache(8);
        c.fill_negative(&p("/new"), c.begin(), &mut OpStats::new());
        assert!(c.invalidate_exact(&p("/new")));
        assert_eq!(c.probe(&p("/new"), false), LeaseProbe::Miss);
    }

    #[test]
    fn lru_evicts_oldest() {
        let c = cache(3);
        for i in 0..3 {
            c.fill(
                &p(&format!("/d{i}")),
                &lease(i, 1, 60_000),
                c.begin(),
                &mut OpStats::new(),
            );
        }
        // Touch /d0 so /d1 is the LRU victim.
        assert!(matches!(c.probe(&p("/d0"), false), LeaseProbe::Hit(_)));
        c.fill(
            &p("/d3"),
            &lease(3, 1, 60_000),
            c.begin(),
            &mut OpStats::new(),
        );
        assert_eq!(c.stats().entries, 3);
        assert!(matches!(c.probe(&p("/d1"), false), LeaseProbe::Miss));
        assert!(matches!(c.probe(&p("/d0"), false), LeaseProbe::Hit(_)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn stats_balance_across_churn() {
        let c = cache(64);
        for i in 0..10 {
            c.fill(
                &p(&format!("/a/d{i}")),
                &lease(i, 1, 60_000),
                c.begin(),
                &mut OpStats::new(),
            );
        }
        assert_eq!(c.invalidate_subtree(&p("/a")), 10);
        assert_eq!(c.stats().entries, 0);
        assert_eq!(c.stats().invalidations, 10);
        assert_eq!(c.invalidate_subtree(&p("/a")), 0);
    }

    #[test]
    fn racing_invalidation_rejects_stale_fill() {
        let c = cache(8);
        // A resolution starts (token snapshot), then a rename invalidates
        // the subtree before the result comes back: the fill must be
        // dropped, else the cache would serve the pre-rename pid forever.
        let token = c.begin();
        c.invalidate_subtree(&p("/a"));
        c.fill(&p("/a/b"), &lease(7, 1, 60_000), token, &mut OpStats::new());
        assert_eq!(c.probe(&p("/a/b"), false), LeaseProbe::Miss);
        assert_eq!(c.stats().rejected_fills, 1);
        // Same for a NotFound verdict racing a creation of the path.
        let token = c.begin();
        c.invalidate_exact(&p("/new"));
        c.fill_negative(&p("/new"), token, &mut OpStats::new());
        assert_eq!(c.probe(&p("/new"), false), LeaseProbe::Miss);
        assert_eq!(c.stats().rejected_fills, 2);
        // A fresh token fills normally.
        c.fill(
            &p("/a/b"),
            &lease(7, 1, 60_000),
            c.begin(),
            &mut OpStats::new(),
        );
        assert!(matches!(c.probe(&p("/a/b"), false), LeaseProbe::Hit(_)));
    }

    #[test]
    fn racing_invalidation_rejects_stale_renewal() {
        let c = cache(8);
        c.fill(&p("/a"), &lease(7, 1, 1), c.begin(), &mut OpStats::new());
        clock::sleep(Duration::from_millis(5));
        assert!(matches!(c.probe(&p("/a"), false), LeaseProbe::Expired(_)));
        let token = c.begin();
        // Rename drops /a while the version-check RPC is in flight; the
        // matching verdict is stale and must not resurrect the entry.
        c.invalidate_subtree(&p("/a"));
        assert_eq!(
            c.revalidated(
                &p("/a"),
                true,
                &lease(7, 1, 60_000),
                token,
                &mut OpStats::new()
            ),
            0
        );
        assert_eq!(c.probe(&p("/a"), false), LeaseProbe::Miss);
        assert_eq!(c.stats().rejected_fills, 1);
    }
}
