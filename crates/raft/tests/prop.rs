//! Property tests for the Raft log: the follower-side `try_append`
//! maintains the Log Matching property against arbitrary (consistent)
//! leader histories.

use mantle_raft::LogEntry;
use proptest::prelude::*;

// RaftLog is crate-private; exercise the same semantics through two logs
// replayed from a reference history, as a follower would.
//
// We model a "leader history": a sequence of (term, cmd) entries where
// terms are non-decreasing. A follower receives arbitrary overlapping
// windows of that history (as AppendEntries batches, possibly duplicated
// or reordered *within the rules*: a batch is only accepted if its
// prev-entry matches). The property: after any accepted sequence, the
// follower log is a prefix-consistent copy of the history.

#[derive(Clone, Debug)]
struct History {
    entries: Vec<LogEntry<u32>>,
}

fn arb_history() -> impl Strategy<Value = History> {
    prop::collection::vec((1u64..4, any::<u32>()), 1..30).prop_map(|raw| {
        let mut term = 1;
        let entries = raw
            .into_iter()
            .map(|(bump, cmd)| {
                term += bump / 3; // Non-decreasing terms with occasional bumps.
                LogEntry { term, cmd }
            })
            .collect();
        History { entries }
    })
}

/// A simple reference follower built on the public semantics.
struct Follower {
    entries: Vec<LogEntry<u32>>,
}

impl Follower {
    fn term_at(&self, index: usize) -> Option<u64> {
        if index == 0 {
            return Some(0);
        }
        self.entries.get(index - 1).map(|e| e.term)
    }

    /// Mirrors `RaftLog::try_append` semantics.
    fn try_append(&mut self, prev: usize, prev_term: u64, batch: &[LogEntry<u32>]) -> bool {
        if self.term_at(prev) != Some(prev_term) {
            return false;
        }
        for (i, entry) in batch.iter().enumerate() {
            let index = prev + 1 + i;
            match self.term_at(index) {
                Some(t) if t == entry.term => continue,
                Some(_) => {
                    self.entries.truncate(index - 1);
                    self.entries.push(entry.clone());
                }
                None => self.entries.push(entry.clone()),
            }
        }
        true
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Replaying arbitrary windows of a single leader history leaves the
    /// follower holding an exact prefix of that history, and every accepted
    /// append is idempotent.
    #[test]
    fn windows_of_one_history_converge(
        history in arb_history(),
        windows in prop::collection::vec((0usize..30, 1usize..10), 1..20),
    ) {
        let mut follower = Follower { entries: Vec::new() };
        for (start, len) in windows {
            let start = start.min(history.entries.len());
            let end = (start + len).min(history.entries.len());
            let prev_term = if start == 0 { 0 } else { history.entries[start - 1].term };
            let batch = &history.entries[start..end];
            let accepted = follower.try_append(start, prev_term, batch);
            if accepted {
                // Idempotence: replaying the same window changes nothing.
                let snapshot = follower.entries.clone();
                prop_assert!(follower.try_append(start, prev_term, batch));
                prop_assert_eq!(&follower.entries, &snapshot);
            }
            // Invariant: follower is always a prefix of the history.
            prop_assert!(follower.entries.len() <= history.entries.len());
            for (i, e) in follower.entries.iter().enumerate() {
                prop_assert_eq!(e, &history.entries[i], "diverged at {}", i);
            }
        }
    }

    /// A batch from a *newer* history (higher-term suffix) overwrites the
    /// follower's conflicting suffix — the Log Matching repair path.
    #[test]
    fn conflicting_suffix_is_repaired(
        history in arb_history(),
        fork_at in 0usize..20,
    ) {
        let mut follower = Follower { entries: Vec::new() };
        // Fully replicate the old history.
        prop_assert!(follower.try_append(0, 0, &history.entries));
        let fork_at = fork_at.min(history.entries.len());
        // New leader: same prefix, higher-term suffix with different cmds.
        let new_term = history.entries.last().map_or(1, |e| e.term) + 1;
        let mut new_history = history.entries[..fork_at].to_vec();
        for i in 0..3 {
            new_history.push(LogEntry { term: new_term, cmd: 9_000_000 + i });
        }
        let prev_term = if fork_at == 0 { 0 } else { new_history[fork_at - 1].term };
        prop_assert!(follower.try_append(fork_at, prev_term, &new_history[fork_at..]));
        prop_assert_eq!(&follower.entries, &new_history);
    }
}
