//! Property tests for the Raft log: the follower-side `try_append`
//! maintains the Log Matching property against arbitrary (consistent)
//! leader histories.

use mantle_raft::LogEntry;
use proptest::prelude::*;

// RaftLog is crate-private; exercise the same semantics through two logs
// replayed from a reference history, as a follower would.
//
// We model a "leader history": a sequence of (term, cmd) entries where
// terms are non-decreasing. A follower receives arbitrary overlapping
// windows of that history (as AppendEntries batches, possibly duplicated
// or reordered *within the rules*: a batch is only accepted if its
// prev-entry matches). The property: after any accepted sequence, the
// follower log is a prefix-consistent copy of the history.

#[derive(Clone, Debug)]
struct History {
    entries: Vec<LogEntry<u32>>,
}

fn arb_history() -> impl Strategy<Value = History> {
    prop::collection::vec((1u64..4, any::<u32>()), 1..30).prop_map(|raw| {
        let mut term = 1;
        let entries = raw
            .into_iter()
            .map(|(bump, cmd)| {
                term += bump / 3; // Non-decreasing terms with occasional bumps.
                LogEntry { term, cmd }
            })
            .collect();
        History { entries }
    })
}

/// A simple reference follower built on the public semantics.
struct Follower {
    entries: Vec<LogEntry<u32>>,
}

impl Follower {
    fn term_at(&self, index: usize) -> Option<u64> {
        if index == 0 {
            return Some(0);
        }
        self.entries.get(index - 1).map(|e| e.term)
    }

    /// Mirrors `RaftLog::try_append` semantics.
    fn try_append(&mut self, prev: usize, prev_term: u64, batch: &[LogEntry<u32>]) -> bool {
        if self.term_at(prev) != Some(prev_term) {
            return false;
        }
        for (i, entry) in batch.iter().enumerate() {
            let index = prev + 1 + i;
            match self.term_at(index) {
                Some(t) if t == entry.term => continue,
                Some(_) => {
                    self.entries.truncate(index - 1);
                    self.entries.push(entry.clone());
                }
                None => self.entries.push(entry.clone()),
            }
        }
        true
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Replaying arbitrary windows of a single leader history leaves the
    /// follower holding an exact prefix of that history, and every accepted
    /// append is idempotent.
    #[test]
    fn windows_of_one_history_converge(
        history in arb_history(),
        windows in prop::collection::vec((0usize..30, 1usize..10), 1..20),
    ) {
        let mut follower = Follower { entries: Vec::new() };
        for (start, len) in windows {
            let start = start.min(history.entries.len());
            let end = (start + len).min(history.entries.len());
            let prev_term = if start == 0 { 0 } else { history.entries[start - 1].term };
            let batch = &history.entries[start..end];
            let accepted = follower.try_append(start, prev_term, batch);
            if accepted {
                // Idempotence: replaying the same window changes nothing.
                let snapshot = follower.entries.clone();
                prop_assert!(follower.try_append(start, prev_term, batch));
                prop_assert_eq!(&follower.entries, &snapshot);
            }
            // Invariant: follower is always a prefix of the history.
            prop_assert!(follower.entries.len() <= history.entries.len());
            for (i, e) in follower.entries.iter().enumerate() {
                prop_assert_eq!(e, &history.entries[i], "diverged at {}", i);
            }
        }
    }

    /// A batch from a *newer* history (higher-term suffix) overwrites the
    /// follower's conflicting suffix — the Log Matching repair path.
    #[test]
    fn conflicting_suffix_is_repaired(
        history in arb_history(),
        fork_at in 0usize..20,
    ) {
        let mut follower = Follower { entries: Vec::new() };
        // Fully replicate the old history.
        prop_assert!(follower.try_append(0, 0, &history.entries));
        let fork_at = fork_at.min(history.entries.len());
        // New leader: same prefix, higher-term suffix with different cmds.
        let new_term = history.entries.last().map_or(1, |e| e.term) + 1;
        let mut new_history = history.entries[..fork_at].to_vec();
        for i in 0..3 {
            new_history.push(LogEntry { term: new_term, cmd: 9_000_000 + i });
        }
        let prev_term = if fork_at == 0 { 0 } else { new_history[fork_at - 1].term };
        prop_assert!(follower.try_append(fork_at, prev_term, &new_history[fork_at..]));
        prop_assert_eq!(&follower.entries, &new_history);
    }
}

// --- snapshot + suffix replay ≡ full replay (DESIGN.md §4.11) -----------

/// A keyed-state machine with inserts and deletes: different application
/// orders reach the same state only through genuinely order-insensitive
/// histories, and the sorted snapshot encoding makes equal states
/// byte-identical — the property the InstallSnapshot path relies on.
mod snapshot_replay {
    use std::collections::HashMap;

    use mantle_raft::StateMachine;
    use mantle_types::snapshot::{SnapshotReader, SnapshotWriter};
    use parking_lot::Mutex;
    use proptest::prelude::*;

    #[derive(Default)]
    struct MapSm {
        map: Mutex<HashMap<u64, u64>>,
    }

    impl StateMachine for MapSm {
        /// `(key, Some(val))` puts, `(key, None)` deletes.
        type Command = (u64, Option<u64>);

        fn apply(&self, _index: u64, cmd: &Self::Command) {
            let mut map = self.map.lock();
            match cmd.1 {
                Some(v) => {
                    map.insert(cmd.0, v);
                }
                None => {
                    map.remove(&cmd.0);
                }
            }
        }

        fn barrier() -> Self::Command {
            (u64::MAX, None)
        }

        fn snapshot(&self) -> Vec<u8> {
            let map = self.map.lock();
            let mut rows: Vec<(u64, u64)> = map.iter().map(|(k, v)| (*k, *v)).collect();
            rows.sort_unstable();
            let mut w = SnapshotWriter::new();
            w.u64(rows.len() as u64);
            for (k, v) in rows {
                w.u64(k);
                w.u64(v);
            }
            w.finish()
        }

        fn restore(&self, image: &[u8]) {
            let mut r = SnapshotReader::new(image);
            let n = r.u64() as usize;
            let mut map = HashMap::with_capacity(n);
            for _ in 0..n {
                let k = r.u64();
                let v = r.u64();
                map.insert(k, v);
            }
            *self.map.lock() = map;
        }
    }

    fn arb_ops() -> impl Strategy<Value = Vec<(u64, Option<u64>)>> {
        // A small key space forces overwrite and delete collisions; every
        // third value becomes a delete.
        prop::collection::vec(
            (0u64..16, any::<u64>())
                .prop_map(|(k, v)| (k, if v % 3 == 0 { None } else { Some(v) })),
            0..80,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Restoring a snapshot taken after `k` ops and then applying the
        /// suffix yields byte-identical state to replaying all ops — for
        /// every op sequence and every snapshot point.
        #[test]
        fn snapshot_plus_suffix_equals_full_replay(
            ops in arb_ops(),
            cut in any::<u64>(),
        ) {
            let k = (cut % (ops.len() as u64 + 1)) as usize;

            let full = MapSm::default();
            for (i, op) in ops.iter().enumerate() {
                full.apply(i as u64 + 1, op);
            }

            let pre = MapSm::default();
            for (i, op) in ops[..k].iter().enumerate() {
                pre.apply(i as u64 + 1, op);
            }
            let image = pre.snapshot();

            let resumed = MapSm::default();
            // A recovered replica starts from arbitrary junk state; restore
            // must fully replace it, not merge.
            resumed.apply(0, &(3, Some(999)));
            resumed.restore(&image);
            for (i, op) in ops[k..].iter().enumerate() {
                resumed.apply((k + i) as u64 + 1, op);
            }

            prop_assert_eq!(resumed.snapshot(), full.snapshot());
            // Snapshots are idempotent reads: re-encoding is stable.
            prop_assert_eq!(resumed.snapshot(), resumed.snapshot());
        }
    }
}
