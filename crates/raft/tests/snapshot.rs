//! Snapshotting, log compaction and bounded crash recovery (DESIGN.md
//! §4.11): a long-lagging follower catches up from snapshot + suffix with
//! state byte-identical to a full replay; a short gap never pays for a
//! snapshot transfer; and compaction keeps the retained log bounded.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use mantle_raft::{RaftGroup, RaftOptions, StateMachine};
use mantle_rpc::SimNode;
use mantle_types::snapshot::{SnapshotReader, SnapshotWriter};
use mantle_types::SimConfig;

/// Records every applied command; the snapshot is the exact applied
/// sequence, so two replicas with byte-identical images provably executed
/// the same history.
struct RecordingSm {
    applied: Mutex<Vec<u64>>,
    count: AtomicU64,
}

impl RecordingSm {
    fn new() -> Self {
        RecordingSm {
            applied: Mutex::new(Vec::new()),
            count: AtomicU64::new(0),
        }
    }
}

impl StateMachine for RecordingSm {
    type Command = u64;

    fn apply(&self, _index: u64, cmd: &u64) {
        if *cmd == u64::MAX {
            return; // Term-start barrier.
        }
        self.applied.lock().push(*cmd);
        self.count.fetch_add(1, Ordering::SeqCst);
    }

    fn barrier() -> u64 {
        u64::MAX
    }

    fn snapshot(&self) -> Vec<u8> {
        let applied = self.applied.lock();
        let mut w = SnapshotWriter::new();
        w.u64(self.count.load(Ordering::SeqCst));
        w.u64(applied.len() as u64);
        for v in applied.iter() {
            w.u64(*v);
        }
        w.finish()
    }

    fn restore(&self, image: &[u8]) {
        let mut r = SnapshotReader::new(image);
        let count = r.u64();
        let n = r.u64() as usize;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(r.u64());
        }
        *self.applied.lock() = v;
        self.count.store(count, Ordering::SeqCst);
    }
}

fn group(opts: RaftOptions, n: usize) -> RaftGroup<RecordingSm> {
    let config = SimConfig::instant();
    let nodes = (0..n)
        .map(|i| Arc::new(SimNode::new(format!("raft{i}"), usize::MAX, config)))
        .collect();
    RaftGroup::new(config, opts, nodes, n, |_| RecordingSm::new())
}

fn snappy_opts() -> RaftOptions {
    RaftOptions {
        heartbeat_interval: Duration::from_millis(5),
        election_timeout_min: Duration::from_millis(100),
        election_timeout_max: Duration::from_millis(200),
        snapshot_every: 512,
        snapshot_keep_entries: 64,
        ..RaftOptions::default()
    }
}

/// Deterministic per-seed command stream (splitmix64).
fn cmd_stream(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    move || {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) % u64::MAX // Never the barrier sentinel.
    }
}

/// The acceptance run: a follower that missed 10k entries while crashed
/// catches up through an InstallSnapshot (the leader compacted far past its
/// match point) and ends byte-identical to the leader's full replay, on
/// eight different seeds.
#[test]
fn recovered_follower_catches_up_via_snapshot_after_10k_entry_gap() {
    for seed in 0..8u64 {
        let mut next = cmd_stream(seed);
        let g = group(snappy_opts(), 3);
        let leader = g.leader().expect("bootstrap leader");
        for _ in 0..32 {
            leader.propose(next()).unwrap();
        }
        let lagger = g.replica(2).clone();
        let lag_watch = g
            .replicas()
            .iter()
            .find(|r| r.id() != leader.id() && r.id() != 2)
            .unwrap()
            .clone();
        lagger.wait_for_applied(leader.last_applied(), Duration::from_secs(5));
        g.crash(2);

        let mut last = 0;
        for _ in 0..10_000 {
            last = leader.propose(next()).unwrap();
        }
        assert!(
            leader.snapshot_index() > 32 + 64,
            "seed {seed}: leader must have compacted past the crashed \
             follower's match point (snapshot_index={})",
            leader.snapshot_index()
        );
        // The healthy follower kept up through the log, never a snapshot.
        assert_eq!(lag_watch.snapshot_installs_applied(), 0);

        g.recover(2);
        assert!(
            lagger.wait_for_applied(last, Duration::from_secs(10)),
            "seed {seed}: recovered follower failed to catch up"
        );
        assert!(
            lagger.snapshot_installs_applied() >= 1,
            "seed {seed}: a 10k gap must catch up via InstallSnapshot"
        );
        assert_eq!(
            lagger.state_machine().snapshot(),
            leader.state_machine().snapshot(),
            "seed {seed}: snapshot+suffix state diverged from full replay"
        );
    }
}

/// Regression test for short-gap recovery: a follower missing ONE entry
/// must catch up from the retained log suffix — zero InstallSnapshot RPCs
/// — even on a group that snapshots aggressively.
#[test]
fn one_entry_gap_recovers_from_log_suffix_without_snapshot_transfer() {
    let opts = RaftOptions {
        snapshot_every: 8,
        ..snappy_opts()
    };
    let g = group(opts, 3);
    let leader = g.leader().expect("bootstrap leader");
    let mut next = cmd_stream(42);
    for _ in 0..100 {
        leader.propose(next()).unwrap();
    }
    // Both followers fully caught up before the crash: from here on the
    // leader can never compact past either one's match point (only one
    // more entry is proposed, and commit needs replica 1 in the quorum).
    let follower = g.replica(2).clone();
    for r in g.replicas() {
        assert!(r.wait_for_applied(leader.last_applied(), Duration::from_secs(5)));
    }
    g.crash(2);
    let last = leader.propose(next()).unwrap();
    g.recover(2);
    assert!(
        follower.wait_for_applied(last, Duration::from_secs(5)),
        "follower failed to re-apply the suffix"
    );
    assert_eq!(
        leader.snapshot_installs_sent(),
        0,
        "a 1-entry gap must not trigger a snapshot transfer"
    );
    assert_eq!(follower.snapshot_installs_applied(), 0);
    assert_eq!(
        follower.state_machine().snapshot(),
        leader.state_machine().snapshot()
    );
}

/// The log-bytes watermark bounds retained log memory: after a 100k-op
/// seeded run every replica's retained log stays within 2x the compaction
/// watermark (the acceptance bound for `raft_log_bytes`).
#[test]
fn log_bytes_stay_bounded_by_watermark_under_100k_ops() {
    const WATERMARK: u64 = 64 << 10;
    let opts = RaftOptions {
        // Count trigger effectively off; the bytes watermark drives
        // compaction alone.
        snapshot_every: u64::MAX / 4,
        log_watermark_bytes: WATERMARK,
        snapshot_keep_entries: 64,
        ..snappy_opts()
    };
    let g = group(opts, 3);
    let leader = g.leader().expect("bootstrap leader");
    let mut next = cmd_stream(7);
    let mut last = 0;
    for _ in 0..100_000 {
        last = leader.propose(next()).unwrap();
    }
    for r in g.replicas() {
        assert!(r.wait_for_applied(last, Duration::from_secs(10)));
    }
    for r in g.replicas() {
        assert!(
            r.snapshots_taken() > 0,
            "replica {} never compacted",
            r.id()
        );
        assert!(
            r.log_bytes() <= 2 * WATERMARK,
            "replica {} retains {} bytes, over 2x the {} watermark",
            r.id(),
            r.log_bytes(),
            WATERMARK
        );
    }
}

/// Crash/recover with snapshots enabled is bounded: recovery replays only
/// the suffix past the snapshot, and the recovered state matches the
/// leader's byte-for-byte even when the crash lands between snapshots.
#[test]
fn crash_recover_replays_only_the_suffix() {
    let g = group(snappy_opts(), 3);
    let leader = g.leader().expect("bootstrap leader");
    let mut next = cmd_stream(3);
    for _ in 0..1_500 {
        leader.propose(next()).unwrap();
    }
    let follower = g.replica(1).clone();
    assert!(follower.wait_for_applied(leader.last_applied(), Duration::from_secs(5)));
    let snap_before = follower.snapshot_index();
    assert!(snap_before >= 1024, "follower should have snapshotted");

    g.crash(1);
    g.recover(1);
    let last = leader.propose(next()).unwrap();
    assert!(follower.wait_for_applied(last, Duration::from_secs(5)));
    assert_eq!(
        follower.state_machine().snapshot(),
        leader.state_machine().snapshot()
    );
    // Bounded recovery: the local snapshot anchored the replay; no full
    // history transfer happened.
    assert!(follower.snapshot_index() >= snap_before);
    assert_eq!(follower.snapshot_installs_applied(), 0);
}
