//! Batched leader `commitIndex` queries for ReadIndex follower reads.
//!
//! §5.1.3: "To minimize the overhead imposed on the leader, queries for the
//! commitIndex are batched." Concurrent follower-side readers coalesce into
//! one leader round trip: the first reader becomes the batch leader and
//! performs the query; readers that arrive while it is in flight share its
//! result. Any commitIndex fetched *after* a reader arrived is a valid
//! linearization point for that reader, so sharing is safe.

use parking_lot::{Condvar, Mutex};

#[derive(Default)]
struct State {
    /// Generation counter of completed fetches.
    generation: u64,
    /// Result of the last completed fetch.
    last_value: u64,
    /// Whether a fetch is in flight.
    fetching: bool,
}

/// Coalesces concurrent commit-index queries into shared fetches.
#[derive(Default)]
pub struct CommitIndexBatcher {
    state: Mutex<State>,
    cv: Condvar,
}

impl CommitIndexBatcher {
    /// Creates an idle batcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a commit index fetched at-or-after the caller's arrival,
    /// using `fetch` to perform the actual leader query. `fetch` may be
    /// called by this thread (batch leader) or skipped entirely (joined an
    /// in-flight batch... in which case the *next* completed fetch is used).
    pub fn query(&self, fetch: impl FnOnce() -> u64) -> u64 {
        let mut state = self.state.lock();
        let arrival_gen = state.generation;
        loop {
            // A fetch completed after we arrived: its value is valid for us.
            if state.generation > arrival_gen {
                return state.last_value;
            }
            if !state.fetching {
                state.fetching = true;
                drop(state);
                let value = fetch();
                state = self.state.lock();
                state.fetching = false;
                state.generation += 1;
                state.last_value = value;
                self.cv.notify_all();
                return value;
            }
            self.cv.wait(&mut state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_caller_fetches() {
        let b = CommitIndexBatcher::new();
        assert_eq!(b.query(|| 42), 42);
        assert_eq!(b.query(|| 43), 43);
    }

    #[test]
    fn concurrent_callers_share_fetches() {
        let b = Arc::new(CommitIndexBatcher::new());
        let fetches = Arc::new(AtomicU64::new(0));
        // Instead of a timing sleep, the in-flight fetch holds itself open
        // until every thread has started querying, so the others provably
        // pile up behind it and share its result.
        let arrived = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let (b, fetches, arrived) = (b.clone(), fetches.clone(), arrived.clone());
                std::thread::spawn(move || {
                    arrived.fetch_add(1, Ordering::SeqCst);
                    for _ in 0..20 {
                        let v = b.query(|| {
                            fetches.fetch_add(1, Ordering::SeqCst);
                            while arrived.load(Ordering::SeqCst) < 16 {
                                std::thread::yield_now();
                            }
                            7
                        });
                        assert_eq!(v, 7);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let n = fetches.load(Ordering::SeqCst);
        assert!(
            n < 320,
            "expected batching, got {n} fetches for 320 queries"
        );
        assert!(n >= 1);
    }
}
