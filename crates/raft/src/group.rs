//! Raft group construction and lifecycle.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use mantle_rpc::SimNode;
use mantle_types::SimConfig;

use crate::replica::{RaftError, RaftOptions, RaftReplica, RoleWatch, StateMachine};

/// A Raft group of `n_voters` voting replicas followed by learners.
///
/// Replica 0 is bootstrapped as the initial leader. Background threads
/// (appliers + election tickers, plus per-peer replicators while leading)
/// are owned by the group and joined on drop.
pub struct RaftGroup<SM: StateMachine> {
    replicas: Vec<Arc<RaftReplica<SM>>>,
    n_voters: usize,
    threads: Mutex<Vec<JoinHandle<()>>>,
    role_watch: Arc<RoleWatch>,
}

impl<SM: StateMachine> RaftGroup<SM> {
    /// Builds a group with one state machine per replica.
    ///
    /// `nodes` supplies the simulated server each replica runs on; its
    /// length defines the group size and must be at least `n_voters`.
    pub fn new(
        config: SimConfig,
        opts: RaftOptions,
        nodes: Vec<Arc<SimNode>>,
        n_voters: usize,
        mut sm_factory: impl FnMut(usize) -> SM,
    ) -> Self {
        assert!(n_voters >= 1 && nodes.len() >= n_voters);
        let group_size = nodes.len();
        let role_watch = Arc::new(RoleWatch::new());
        let replicas: Vec<Arc<RaftReplica<SM>>> = nodes
            .into_iter()
            .enumerate()
            .map(|(id, node)| {
                RaftReplica::new(
                    id,
                    n_voters,
                    group_size,
                    sm_factory(id),
                    node,
                    config,
                    opts,
                    Arc::clone(&role_watch),
                )
            })
            .collect();
        for r in &replicas {
            r.set_peers(replicas.iter().map(Arc::downgrade).collect());
        }

        let mut threads = Vec::new();
        for r in &replicas {
            let applier = Arc::clone(r);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("raft-apply-{}", r.id()))
                    .spawn(move || applier.apply_loop())
                    .expect("spawn applier"),
            );
            if !r.is_learner() {
                let ticker = Arc::clone(r);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("raft-tick-{}", r.id()))
                        .spawn(move || ticker.tick_loop())
                        .expect("spawn ticker"),
                );
            }
        }
        replicas[0].bootstrap_leader();

        RaftGroup {
            replicas,
            n_voters,
            threads: Mutex::new(threads),
            role_watch,
        }
    }

    /// All replicas (voters first, then learners).
    pub fn replicas(&self) -> &[Arc<RaftReplica<SM>>] {
        &self.replicas
    }

    /// The replica with the given id.
    pub fn replica(&self, id: usize) -> &Arc<RaftReplica<SM>> {
        &self.replicas[id]
    }

    /// Number of voting members.
    pub fn n_voters(&self) -> usize {
        self.n_voters
    }

    /// The current leader, if any replica claims leadership.
    pub fn leader(&self) -> Option<Arc<RaftReplica<SM>>> {
        self.replicas.iter().find(|r| r.is_leader()).cloned()
    }

    /// Waits until some replica is leader.
    ///
    /// # Errors
    ///
    /// [`RaftError::Unavailable`] if no leader emerges within `timeout`.
    pub fn await_leader(&self, timeout: Duration) -> Result<Arc<RaftReplica<SM>>, RaftError> {
        let deadline = Instant::now() + timeout;
        loop {
            // Read the watch version before inspecting roles so a role
            // change between the check and the wait is never lost.
            let seen = self.role_watch.version();
            if let Some(l) = self.leader() {
                return Ok(l);
            }
            let now = Instant::now();
            if now > deadline {
                return Err(RaftError::Unavailable);
            }
            self.role_watch.wait_past(seen, deadline - now);
        }
    }

    /// Installs (or clears) a fault plan on every replica, and registers
    /// each replica's crash/recover pair as node hooks so
    /// `FaultPlan::crash_node("<node name>")` reaches it.
    pub fn install_faults(&self, plan: Option<std::sync::Arc<mantle_rpc::FaultPlan>>) {
        for r in &self.replicas {
            r.install_faults(plan.clone());
            if let Some(plan) = &plan {
                let crash = Arc::downgrade(r);
                let recover = Arc::downgrade(r);
                plan.register_node_hooks(
                    r.node().name(),
                    move || {
                        if let Some(r) = crash.upgrade() {
                            r.crash();
                        }
                    },
                    move || {
                        if let Some(r) = recover.upgrade() {
                            r.recover();
                        }
                    },
                );
            }
        }
    }

    /// Crashes replica `id` (fails its RPCs, pauses its apply loop).
    pub fn crash(&self, id: usize) {
        self.replicas[id].crash();
    }

    /// Recovers replica `id` as a follower with its log intact.
    pub fn recover(&self, id: usize) {
        self.replicas[id].recover();
    }
}

impl<SM: StateMachine> Drop for RaftGroup<SM> {
    fn drop(&mut self) {
        for r in &self.replicas {
            r.begin_shutdown();
        }
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantle_types::RequestCtx;
    use parking_lot::Mutex as PlMutex;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A state machine that records applied commands.
    struct RecordingSm {
        applied: PlMutex<Vec<u64>>,
        count: AtomicU64,
    }

    impl RecordingSm {
        fn new() -> Self {
            RecordingSm {
                applied: PlMutex::new(Vec::new()),
                count: AtomicU64::new(0),
            }
        }
    }

    impl StateMachine for RecordingSm {
        type Command = u64;

        fn apply(&self, _index: u64, cmd: &u64) {
            if *cmd == u64::MAX {
                return; // Term-start barrier.
            }
            self.applied.lock().push(*cmd);
            self.count.fetch_add(1, Ordering::SeqCst);
        }

        fn barrier() -> u64 {
            u64::MAX
        }

        fn snapshot(&self) -> Vec<u8> {
            use mantle_types::snapshot::SnapshotWriter;
            let applied = self.applied.lock();
            let mut w = SnapshotWriter::new();
            w.u64(self.count.load(Ordering::SeqCst));
            w.u64(applied.len() as u64);
            for v in applied.iter() {
                w.u64(*v);
            }
            w.finish()
        }

        fn restore(&self, image: &[u8]) {
            use mantle_types::snapshot::SnapshotReader;
            let mut r = SnapshotReader::new(image);
            let count = r.u64();
            let n = r.u64() as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.u64());
            }
            *self.applied.lock() = v;
            self.count.store(count, Ordering::SeqCst);
        }
    }

    fn test_group(n_voters: usize, n_learners: usize) -> RaftGroup<RecordingSm> {
        let config = SimConfig::instant();
        let nodes = (0..n_voters + n_learners)
            .map(|i| Arc::new(SimNode::new(format!("raft{i}"), usize::MAX, config)))
            .collect();
        let opts = RaftOptions {
            heartbeat_interval: Duration::from_millis(5),
            election_timeout_min: Duration::from_millis(50),
            election_timeout_max: Duration::from_millis(100),
            ..RaftOptions::default()
        };
        RaftGroup::new(config, opts, nodes, n_voters, |_| RecordingSm::new())
    }

    #[test]
    fn bootstrap_leader_proposes_and_applies() {
        let group = test_group(3, 0);
        let leader = group.leader().expect("bootstrap leader");
        assert_eq!(leader.id(), 0);
        for i in 0..20 {
            let idx = leader.propose(i).unwrap();
            // Index 1 is the term-start barrier.
            assert_eq!(idx, i + 2);
        }
        assert_eq!(
            *leader.state_machine().applied.lock(),
            (0..20).collect::<Vec<_>>()
        );
    }

    #[test]
    fn followers_catch_up() {
        let group = test_group(3, 1);
        let leader = group.leader().unwrap();
        for i in 0..50 {
            leader.propose(i).unwrap();
        }
        // Replication is asynchronous for followers; wait on the apply
        // signal (index 1 is the term-start barrier, so 50 proposals end
        // at index 51).
        for r in group.replicas() {
            assert!(
                r.wait_for_applied(51, Duration::from_secs(5)),
                "replica {} did not catch up",
                r.id()
            );
        }
        for r in group.replicas() {
            assert_eq!(
                *r.state_machine().applied.lock(),
                (0..50).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn propose_on_follower_is_rejected() {
        let group = test_group(3, 0);
        group.await_leader(Duration::from_secs(1)).unwrap();
        let follower = group.replicas().iter().find(|r| !r.is_leader()).unwrap();
        match follower.propose(1) {
            Err(RaftError::NotLeader(_)) => {}
            other => panic!("expected NotLeader, got {other:?}"),
        }
    }

    #[test]
    fn read_index_on_follower_sees_committed_writes() {
        let group = test_group(3, 1);
        let leader = group.leader().unwrap();
        for i in 0..10 {
            leader.propose(i).unwrap();
        }
        let learner = group.replica(3);
        assert!(learner.is_learner());
        let mut stats = RequestCtx::new();
        let ci = learner.read_index(&mut stats).unwrap();
        assert!(ci >= 10);
        assert!(learner.last_applied() >= 10);
        assert_eq!(learner.state_machine().count.load(Ordering::SeqCst), 10);
        assert_eq!(stats.rpcs, 1, "batch leader pays one leader RPC");
    }

    #[test]
    fn leader_failover_elects_new_leader_and_preserves_log() {
        let group = test_group(3, 0);
        let leader = group.leader().unwrap();
        for i in 0..10 {
            leader.propose(i).unwrap();
        }
        group.crash(leader.id());
        let new_leader = group.await_leader(Duration::from_secs(5)).unwrap();
        assert_ne!(new_leader.id(), leader.id());
        // The new leader must retain all committed entries and accept more.
        for i in 10..15 {
            new_leader.propose(i).unwrap();
        }
        assert_eq!(
            *new_leader.state_machine().applied.lock(),
            (0..15).collect::<Vec<_>>()
        );
        // Old leader recovers as follower and catches up.
        group.recover(leader.id());
        assert!(
            leader.wait_for_applied(new_leader.last_applied(), Duration::from_secs(5)),
            "recovered replica did not catch up"
        );
        assert_eq!(leader.state_machine().count.load(Ordering::SeqCst), 15);
        assert!(!leader.is_leader() || leader.term() > 1);
    }

    #[test]
    fn learners_do_not_vote() {
        let group = test_group(1, 2);
        let leader = group.leader().unwrap();
        assert_eq!(leader.id(), 0);
        // With a single voter, quorum is 1: proposals commit immediately.
        leader.propose(7).unwrap();
        assert_eq!(leader.state_machine().count.load(Ordering::SeqCst), 1);
        for r in group.replicas().iter().skip(1) {
            assert!(r.is_learner());
            assert!(!r.is_leader());
        }
    }

    #[test]
    fn log_batching_reduces_fsyncs() {
        // Compare fsync counts with and without batching under concurrency.
        let run = |batching: bool| -> (u64, u64) {
            let mut config = SimConfig::instant();
            config.fsync_micros = 500;
            let nodes = (0..3)
                .map(|i| Arc::new(SimNode::new(format!("raft{i}"), usize::MAX, config)))
                .collect();
            let opts = RaftOptions {
                log_batching: batching,
                heartbeat_interval: Duration::from_millis(5),
                ..RaftOptions::default()
            };
            let group = RaftGroup::new(config, opts, nodes, 3, |_| RecordingSm::new());
            let leader = group.leader().unwrap();
            std::thread::scope(|s| {
                for t in 0..8 {
                    let leader = &leader;
                    s.spawn(move || {
                        for i in 0..10 {
                            leader.propose(t * 100 + i).unwrap();
                        }
                    });
                }
            });
            (leader.wal_fsyncs(), 80)
        };
        let (batched, total) = run(true);
        let (unbatched, _) = run(false);
        assert_eq!(unbatched, total);
        if mantle_types::clock::is_virtual() {
            // Group commit amortizes fsyncs that overlap in *wall* time;
            // under the virtual clock injected fsyncs are instant, so
            // overlap (and thus the strict win) is not guaranteed. The
            // MANTLE_WALL_CLOCK=1 smoke run covers the strict assertion.
            assert!(
                batched <= unbatched,
                "batched={batched} must never exceed unbatched={unbatched}"
            );
        } else {
            assert!(
                batched < unbatched,
                "batched={batched} should be < unbatched={unbatched}"
            );
        }
    }
}
