//! Raft consensus for the IndexNode replication group (§4, §5.1.3, §5.2.3).
//!
//! Mantle replicates every IndexNode update through a Raft group so that the
//! single-node directory index stays available; this crate implements the
//! protocol pieces the paper's optimizations build on:
//!
//! * **Log batching** (§5.2.3): follower/leader durability goes through a
//!   group-commit WAL; concurrent proposals share one injected fsync, and
//!   an `AppendEntries` RPC carrying a batch of entries pays one flush.
//!   Disabling [`RaftOptions::log_batching`] reproduces the Figure 16
//!   `+raftlogbatch` ablation baseline.
//! * **Follower reads via ReadIndex** (§5.1.3): a follower asks the leader
//!   for the latest `commitIndex`, waits until its local `applyIndex`
//!   catches up, and then serves the read locally. Concurrent queries are
//!   batched ([`batcher::CommitIndexBatcher`]) "to minimize the overhead
//!   imposed on the leader".
//! * **Learner replicas** (§5.1.3): non-voting members that receive the log
//!   and serve ReadIndex reads, adding read capacity without growing the
//!   quorum.
//! * **Leader election and failover** (§5.3): replicas time out on missing
//!   heartbeats, campaign, and the group re-elects; killed replicas keep
//!   their (simulated-durable) log and can rejoin.
//! * **Snapshotting and log compaction** (DESIGN.md §4.11): the apply
//!   thread periodically captures a [`StateMachine::snapshot`] (by applied
//!   count and by log-bytes watermark), acknowledges it with a WAL
//!   checkpoint record, and truncates the log prefix. A follower whose next
//!   entry was compacted away receives the snapshot via `InstallSnapshot`
//!   (Raft §7), and `recover()` restores the latest known-good snapshot plus
//!   the log suffix — O(snapshot + suffix) instead of O(history). Crashes
//!   during snapshot write or install abort cleanly: the previous snapshot
//!   stays authoritative (same discard-on-abort discipline as TafDB shard
//!   migration).
//!
//! The "network" between replicas is direct method calls with injected
//! round-trip delays, and each replica's handlers execute inside its
//! [`mantle_rpc::SimNode`] capacity envelope — see DESIGN.md §1.

pub mod batcher;
pub mod group;
pub mod log;
pub mod replica;

pub use batcher::CommitIndexBatcher;
pub use group::RaftGroup;
pub use log::LogEntry;
pub use replica::{RaftError, RaftOptions, RaftReplica, Role, StateMachine};
