//! A single Raft replica: roles, log replication, elections, ReadIndex.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use mantle_obs::{Counter, Gauge, HistogramMetric};
use mantle_rpc::SimNode;
use mantle_store::GroupCommitWal;
use mantle_types::clock::{self, TimeCategory};
use mantle_types::snapshot::{frame, unframe};
use mantle_types::{RequestCtx, SimConfig};

/// Group-shared role-change signal: bumped whenever any replica's role (or
/// liveness) changes, so waiters like [`crate::RaftGroup::await_leader`]
/// can block on a condvar instead of sleep-polling.
pub(crate) struct RoleWatch {
    version: Mutex<u64>,
    cv: Condvar,
}

impl RoleWatch {
    pub(crate) fn new() -> Self {
        RoleWatch {
            version: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Current change counter; read *before* inspecting role state so a
    /// change between the inspection and [`RoleWatch::wait_past`] is never
    /// lost.
    pub(crate) fn version(&self) -> u64 {
        *self.version.lock()
    }

    pub(crate) fn notify(&self) {
        let mut v = self.version.lock();
        *v += 1;
        self.cv.notify_all();
    }

    /// Blocks until the change counter advances past `seen` or `timeout`
    /// elapses.
    pub(crate) fn wait_past(&self, seen: u64, timeout: Duration) {
        let mut v = self.version.lock();
        if *v > seen {
            return;
        }
        self.cv.wait_for(&mut v, timeout);
    }
}

/// Per-replica metric handles (labeled `node=<sim node name>`).
struct RaftMetrics {
    /// `raft_appends_total{node=...}` — log entries appended (leader
    /// proposals and follower replication).
    appends: Counter,
    /// `raft_elections_total{node=...}` — campaigns started here.
    elections: Counter,
    /// `raft_leaders_elected_total{node=...}` — campaigns this replica won.
    leaders_elected: Counter,
    /// `raft_term_changes_total{node=...}` — term bumps observed here.
    term_changes: Counter,
    /// `raft_replicate_batch_entries{node=...}` — entries per
    /// AppendEntries batch sent from this leader.
    batch: HistogramMetric,
    /// `raft_snapshots_total{node=...}` — snapshots captured here.
    snapshots: Counter,
    /// `raft_snapshot_installs_total{node=...}` — snapshots installed on
    /// this (lagging) replica.
    installs: Counter,
    /// `raft_snapshot_aborts_total{node=...}` — snapshot writes/installs
    /// abandoned on an injected fault or torn image; the previous snapshot
    /// stayed authoritative.
    snapshot_aborts: Counter,
    /// `raft_log_bytes{node=...}` — retained (uncompacted) log footprint.
    log_bytes: Gauge,
}

impl RaftMetrics {
    fn new(node: &str) -> Self {
        let labels = [("node", node)];
        RaftMetrics {
            appends: mantle_obs::counter("raft_appends_total", &labels),
            elections: mantle_obs::counter("raft_elections_total", &labels),
            leaders_elected: mantle_obs::counter("raft_leaders_elected_total", &labels),
            term_changes: mantle_obs::counter("raft_term_changes_total", &labels),
            batch: mantle_obs::histogram("raft_replicate_batch_entries", &labels),
            snapshots: mantle_obs::counter("raft_snapshots_total", &labels),
            installs: mantle_obs::counter("raft_snapshot_installs_total", &labels),
            snapshot_aborts: mantle_obs::counter("raft_snapshot_aborts_total", &labels),
            log_bytes: mantle_obs::gauge("raft_log_bytes", &labels),
        }
    }
}

use crate::batcher::CommitIndexBatcher;
use crate::log::{LogEntry, RaftLog};

/// The replicated state machine a Raft group drives.
///
/// Each replica owns an independent instance and applies committed commands
/// in log order; §4: "all nodes maintain identical in-memory data
/// structures, which are independently constructed by each node".
pub trait StateMachine: Send + Sync + 'static {
    /// The replicated command type.
    type Command: Clone + Send + Sync + 'static;

    /// Applies the committed entry at `index`. Must be deterministic.
    fn apply(&self, index: u64, cmd: &Self::Command);

    /// A no-op command the leader appends on taking office. Committing it
    /// is what allows a new leader to advance the commit index over entries
    /// from previous terms (Raft §5.4.2's current-term commit rule).
    fn barrier() -> Self::Command;

    /// Serializes the entire applied state. Must be **deterministic**: two
    /// replicas that applied the same log prefix must produce byte-identical
    /// images (iterate maps in sorted order — see
    /// [`mantle_types::snapshot`]). Called from the apply thread only, so
    /// no command is concurrently being applied.
    fn snapshot(&self) -> Vec<u8>;

    /// Replaces the whole state with an image produced by
    /// [`StateMachine::snapshot`]. Derived caches may simply be cleared;
    /// like `apply`, this runs on the apply thread only.
    fn restore(&self, image: &[u8]);
}

/// Protocol tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct RaftOptions {
    /// Share fsyncs across concurrently appended entries (§5.2.3). Turning
    /// this off reproduces the Figure 16 pre-`+raftlogbatch` baseline.
    pub log_batching: bool,
    /// Leader heartbeat interval.
    pub heartbeat_interval: Duration,
    /// Minimum randomized election timeout.
    pub election_timeout_min: Duration,
    /// Maximum randomized election timeout.
    pub election_timeout_max: Duration,
    /// Maximum entries per AppendEntries RPC — the replication pipeline
    /// depth. Together with the per-round network+fsync cost this bounds a
    /// group's commit throughput ("Mantle's throughput is bound to a single
    /// Raft group", §6.3).
    pub max_batch: usize,
    /// Applied entries between state-machine snapshots (0 disables
    /// snapshotting and compaction entirely — the pre-§4.11 behaviour).
    pub snapshot_every: u64,
    /// Also snapshot + compact whenever the retained log exceeds this many
    /// bytes, even if `snapshot_every` has not elapsed (0 disables the
    /// bytes trigger).
    pub log_watermark_bytes: u64,
    /// Trailing entries kept behind each snapshot so briefly-lagging
    /// followers (and freshly recovered replicas) catch up from the log
    /// suffix instead of a full snapshot transfer.
    pub snapshot_keep_entries: u64,
}

impl Default for RaftOptions {
    fn default() -> Self {
        RaftOptions {
            log_batching: true,
            heartbeat_interval: Duration::from_millis(20),
            election_timeout_min: Duration::from_millis(150),
            election_timeout_max: Duration::from_millis(300),
            max_batch: 16,
            snapshot_every: 1024,
            log_watermark_bytes: 4 << 20,
            snapshot_keep_entries: 64,
        }
    }
}

/// A replica's current role.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// Accepts proposals and drives replication.
    Leader,
    /// Replicates the leader's log; may campaign.
    Follower,
    /// Campaigning for leadership.
    Candidate,
    /// Non-voting read replica (§5.1.3).
    Learner,
}

/// Errors surfaced to Raft clients.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaftError {
    /// This replica is not the leader; the hint names the believed leader.
    NotLeader(Option<usize>),
    /// The replica is crashed or shutting down.
    Unavailable,
    /// The proposed entry was overwritten by a newer leader before commit.
    Superseded,
    /// The request's propagated deadline expired before the read path could
    /// issue its ReadIndex query (§4.14 deadline propagation).
    DeadlineExceeded,
}

impl std::fmt::Display for RaftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaftError::NotLeader(hint) => write!(f, "not leader (hint: {hint:?})"),
            RaftError::Unavailable => write!(f, "replica unavailable"),
            RaftError::Superseded => write!(f, "entry superseded by new leader"),
            RaftError::DeadlineExceeded => write!(f, "read deadline exceeded"),
        }
    }
}

impl std::error::Error for RaftError {}

/// AppendEntries response.
#[derive(Clone, Copy, Debug)]
pub struct AppendResult {
    term: u64,
    success: bool,
    match_index: u64,
    reachable: bool,
}

/// RequestVote response.
#[derive(Clone, Copy, Debug)]
pub struct VoteResult {
    term: u64,
    granted: bool,
    reachable: bool,
}

struct Inner<C> {
    term: u64,
    voted_for: Option<usize>,
    role: Role,
    log: RaftLog<C>,
    commit_index: u64,
    last_applied: u64,
    last_heartbeat: Instant,
    leader_hint: Option<usize>,
    /// Leader-only: next log index to send to each peer.
    next_index: Vec<u64>,
    /// Leader-only: highest durably replicated index per peer.
    match_index: Vec<u64>,
    /// Bumped on each leadership acquisition; stale replicators exit.
    leader_epoch: u64,
    /// A received-but-not-yet-installed snapshot `(index, term, frame)`;
    /// consumed by the apply thread, which is the sole SM mutator.
    pending_install: Option<(u64, u64, Arc<Vec<u8>>)>,
    /// Completed install *attempts* (success or abort); lets the
    /// InstallSnapshot handler distinguish "still queued" from "tried and
    /// failed" without a side channel.
    install_seq: u64,
}

/// The latest durable state-machine snapshot of one replica.
///
/// `data` is a checksummed frame ([`mantle_types::snapshot::frame`]): a
/// torn write is detected at restore time, not trusted.
struct Snapshot {
    /// Last log index folded into the image.
    index: u64,
    /// Term of that entry.
    term: u64,
    /// Framed image; shared with in-flight InstallSnapshot RPCs.
    data: Arc<Vec<u8>>,
}

/// One member of a Raft group.
pub struct RaftReplica<SM: StateMachine> {
    id: usize,
    n_voters: usize,
    group_size: usize,
    learner: bool,
    inner: Mutex<Inner<SM::Command>>,
    /// Signaled when commit_index or last_applied advances.
    apply_cv: Condvar,
    /// Signaled when new entries are appended (wakes replicators).
    log_cv: Condvar,
    sm: Arc<SM>,
    wal: GroupCommitWal,
    node: Arc<SimNode>,
    alive: AtomicBool,
    shutdown: AtomicBool,
    peers: OnceLock<Vec<Weak<RaftReplica<SM>>>>,
    read_batcher: CommitIndexBatcher,
    config: SimConfig,
    opts: RaftOptions,
    metrics: RaftMetrics,
    role_watch: Arc<RoleWatch>,
    /// Latest *known-good* durable snapshot: only ever replaced by a fully
    /// written, checkpoint-acknowledged successor. Lock order: `inner`
    /// before `snap`.
    snap: Mutex<Snapshot>,
    /// A newer image whose write crashed partway (injected
    /// `snap_write` fault): durable on disk but torn. Recovery validates it,
    /// rejects it by checksum, and falls back to [`RaftReplica::snap`].
    torn_snap: Mutex<Option<Arc<Vec<u8>>>>,
    /// InstallSnapshot RPCs sent while leading.
    installs_sent: AtomicU64,
    /// Snapshots successfully installed on this replica.
    installs_applied: AtomicU64,
    /// Snapshots captured locally by the apply thread.
    snapshots_taken: AtomicU64,
}

impl<SM: StateMachine> RaftReplica<SM> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: usize,
        n_voters: usize,
        group_size: usize,
        sm: SM,
        node: Arc<SimNode>,
        config: SimConfig,
        opts: RaftOptions,
        role_watch: Arc<RoleWatch>,
    ) -> Arc<Self> {
        let learner = id >= n_voters;
        let metrics = RaftMetrics::new(node.name());
        // The index-0 snapshot of the pristine state machine: recovery and
        // InstallSnapshot always have *some* authoritative image to fall
        // back to, even before the first periodic snapshot.
        let genesis = Arc::new(frame(sm.snapshot()));
        Arc::new(RaftReplica {
            id,
            n_voters,
            group_size,
            learner,
            inner: Mutex::new(Inner {
                term: 0,
                voted_for: None,
                role: if learner {
                    Role::Learner
                } else {
                    Role::Follower
                },
                log: RaftLog::default(),
                commit_index: 0,
                last_applied: 0,
                last_heartbeat: Instant::now(),
                leader_hint: None,
                next_index: vec![1; group_size],
                match_index: vec![0; group_size],
                leader_epoch: 0,
                pending_install: None,
                install_seq: 0,
            }),
            apply_cv: Condvar::new(),
            log_cv: Condvar::new(),
            sm: Arc::new(sm),
            wal: GroupCommitWal::new_scoped(config, opts.log_batching, "raft"),
            node,
            alive: AtomicBool::new(true),
            shutdown: AtomicBool::new(false),
            peers: OnceLock::new(),
            read_batcher: CommitIndexBatcher::new(),
            config,
            opts,
            metrics,
            role_watch,
            snap: Mutex::new(Snapshot {
                index: 0,
                term: 0,
                data: genesis,
            }),
            torn_snap: Mutex::new(None),
            installs_sent: AtomicU64::new(0),
            installs_applied: AtomicU64::new(0),
            snapshots_taken: AtomicU64::new(0),
        })
    }

    /// Sets the role field and signals the group-wide watch if it changed.
    fn set_role(&self, g: &mut Inner<SM::Command>, role: Role) {
        if g.role != role {
            g.role = role;
            self.role_watch.notify();
        }
    }

    pub(crate) fn set_peers(&self, peers: Vec<Weak<RaftReplica<SM>>>) {
        self.peers
            .set(peers)
            .map_err(|_| ())
            .expect("peers set once");
    }

    fn peer(&self, i: usize) -> Option<Arc<RaftReplica<SM>>> {
        self.peers.get()?.get(i)?.upgrade()
    }

    // --- accessors -------------------------------------------------------

    /// This replica's id within the group.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Whether this replica is a non-voting learner.
    pub fn is_learner(&self) -> bool {
        self.learner
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.inner.lock().role
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.inner.lock().term
    }

    /// Whether this replica currently leads.
    pub fn is_leader(&self) -> bool {
        self.alive() && self.inner.lock().role == Role::Leader
    }

    /// Whether the replica is up.
    pub fn alive(&self) -> bool {
        self.alive.load(Ordering::Acquire) && !self.shutdown.load(Ordering::Acquire)
    }

    /// Highest committed log index.
    pub fn commit_index(&self) -> u64 {
        self.inner.lock().commit_index
    }

    /// Highest applied log index.
    pub fn last_applied(&self) -> u64 {
        self.inner.lock().last_applied
    }

    /// The replica's state machine.
    pub fn state_machine(&self) -> &SM {
        &self.sm
    }

    /// The simulated server this replica runs on.
    pub fn node(&self) -> &Arc<SimNode> {
        &self.node
    }

    /// Physical fsyncs performed by this replica's log.
    pub fn wal_fsyncs(&self) -> u64 {
        self.wal.fsyncs()
    }

    /// Index of the last entry covered by this replica's local snapshot.
    pub fn snapshot_index(&self) -> u64 {
        self.snap.lock().index
    }

    /// Approximate bytes retained in the (uncompacted) log.
    pub fn log_bytes(&self) -> u64 {
        self.inner.lock().log.bytes()
    }

    /// Snapshots this replica has captured.
    pub fn snapshots_taken(&self) -> u64 {
        self.snapshots_taken.load(Ordering::Relaxed)
    }

    /// InstallSnapshot RPCs this replica has sent while leading.
    pub fn snapshot_installs_sent(&self) -> u64 {
        self.installs_sent.load(Ordering::Relaxed)
    }

    /// Snapshots successfully installed on this replica.
    pub fn snapshot_installs_applied(&self) -> u64 {
        self.installs_applied.load(Ordering::Relaxed)
    }

    // --- failure injection ------------------------------------------------

    /// Installs (or clears) a fault plan on this replica: its node
    /// (transport faults), its log WAL (fsync faults), and the
    /// replication/election/read paths (directed partitions).
    pub fn install_faults(&self, plan: Option<Arc<mantle_rpc::FaultPlan>>) {
        self.node.set_faults(plan.clone());
        self.wal.set_faults(plan);
    }

    /// Whether the directed edge from this replica to `peer` is cut by an
    /// installed fault plan.
    fn edge_cut(&self, peer: &RaftReplica<SM>) -> bool {
        self.node
            .faults()
            .is_some_and(|p| p.edge_blocked(self.node.name(), peer.node.name()))
    }

    /// Simulates a crash: the replica stops answering and proposing. Its
    /// log survives (it was durable), matching a restart from disk.
    pub fn crash(&self) {
        self.alive.store(false, Ordering::Release);
        let _g = self.inner.lock();
        self.apply_cv.notify_all();
        self.log_cv.notify_all();
        self.role_watch.notify();
    }

    /// Brings a crashed replica back as a follower.
    ///
    /// Bounded recovery (§4.11): the in-memory applied state is lost with
    /// the crash, so the replica restores its latest durable snapshot and
    /// re-applies only the durable log *suffix* past it — O(snapshot +
    /// suffix), not O(history). A snapshot whose write was torn by the
    /// crash fails checksum validation and recovery falls back to the
    /// previous known-good snapshot (the log is only ever compacted after
    /// a *successful* snapshot, so the longer suffix it needs is intact).
    pub fn recover(&self) {
        {
            let mut g = self.inner.lock();
            if g.role == Role::Leader || g.role == Role::Candidate {
                self.set_role(&mut g, Role::Follower);
            }
            g.last_heartbeat = Instant::now();
            g.pending_install = None;
            if let Some(torn) = self.torn_snap.lock().take() {
                // The newest on-disk image never finished writing; the
                // checksum rejects it and the previous snapshot stays
                // authoritative.
                debug_assert!(unframe(&torn).is_none(), "torn frame must not validate");
                mantle_obs::flight::annotate_with(|| {
                    format!("raft:recover torn_snapshot node={}", self.node.name())
                });
                self.metrics.snapshot_aborts.inc();
            }
            let (snap_index, data) = {
                let s = self.snap.lock();
                (s.index, Arc::clone(&s.data))
            };
            let image = unframe(&data).expect("known-good snapshot validates");
            self.sm.restore(image);
            g.last_applied = snap_index;
            if g.commit_index < snap_index {
                g.commit_index = snap_index;
            }
            // Invalidate any apply batch collected before the crash: its
            // bookkeeping would skip re-applying the restored suffix.
            g.install_seq += 1;
            self.apply_cv.notify_all();
        }
        self.alive.store(true, Ordering::Release);
        self.role_watch.notify();
    }

    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        let _g = self.inner.lock();
        self.apply_cv.notify_all();
        self.log_cv.notify_all();
        self.role_watch.notify();
    }

    // --- client API -------------------------------------------------------

    /// Proposes a command; returns its log index once committed *and*
    /// applied on this (leader) replica.
    ///
    /// # Errors
    ///
    /// [`RaftError::NotLeader`] when called on a non-leader,
    /// [`RaftError::Unavailable`] if the replica dies while waiting, and
    /// [`RaftError::Superseded`] if a new leader overwrote the entry.
    pub fn propose(&self, cmd: SM::Command) -> Result<u64, RaftError> {
        if !self.alive() {
            return Err(RaftError::Unavailable);
        }
        let (my_index, my_term) = {
            let mut g = self.inner.lock();
            if g.role != Role::Leader {
                return Err(RaftError::NotLeader(g.leader_hint));
            }
            let term = g.term;
            let index = g.log.append(LogEntry { term, cmd });
            self.log_cv.notify_all();
            (index, term)
        };
        self.metrics.appends.inc();

        // Leader durability: group-committed fsync outside the lock.
        self.wal.append();

        // With a fault plan installed, a partitioned leader must not hang
        // its proposers forever: bound the wait and surface Unavailable
        // (retryable — the entry may still commit, but the client-UUID
        // idempotency layer makes the replay safe). Without a plan the
        // wait is unbounded, exactly as before.
        let deadline = self.node.faults().map(|_| {
            Instant::now() + (self.opts.election_timeout_max * 10).max(Duration::from_secs(2))
        });

        let mut g = self.inner.lock();
        if g.match_index[self.id] < my_index {
            g.match_index[self.id] = my_index;
        }
        self.advance_commit(&mut g);
        loop {
            if g.last_applied >= my_index {
                return match g.log.term_at(my_index) {
                    Some(t) if t == my_term => {
                        // Quorum replication happens on replicator threads;
                        // under virtual time the proposer's own timeline
                        // would not see that round trip, so the modeled
                        // commit cost is folded in here (no-op under the
                        // wall clock, where the condvar wait was real).
                        if self.n_voters > 1 {
                            // Attribute the folded commit cost to this
                            // replica in any active trace, so critical-path
                            // breakdowns show "commit @ raft leader" rather
                            // than unlabeled client time.
                            let _span = mantle_obs::trace::span(
                                "quorum_commit",
                                self.node.name(),
                                mantle_obs::trace::SpanKind::Local,
                            );
                            clock::fold_model(TimeCategory::Commit, self.config.rtt());
                        }
                        Ok(my_index)
                    }
                    _ => Err(RaftError::Superseded),
                };
            }
            if g.log.term_at(my_index) != Some(my_term) {
                return Err(RaftError::Superseded);
            }
            if !self.alive() {
                return Err(RaftError::Unavailable);
            }
            if deadline.is_some_and(|d| Instant::now() > d) {
                return Err(RaftError::Unavailable);
            }
            self.apply_cv.wait_for(&mut g, Duration::from_millis(10));
        }
    }

    /// Blocks until this replica has applied at least `index`, or `timeout`
    /// elapses. Returns whether the target was reached. Notification-based
    /// (the apply loop signals `apply_cv`), so callers neither spin nor
    /// depend on wall-clock sleep granularity.
    pub fn wait_for_applied(&self, index: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = self.inner.lock();
        while g.last_applied < index {
            if self.shutdown.load(Ordering::Acquire) {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.apply_cv.wait_for(&mut g, deadline - now);
        }
        true
    }

    /// ReadIndex (§5.1.3): obtains a linearization-safe commit index and
    /// waits until the local apply index reaches it. On the leader this is
    /// the local commit index; on followers/learners the leader is queried
    /// (batched) at the cost of one RPC for the batch leader.
    ///
    /// # Errors
    ///
    /// [`RaftError::Unavailable`] when no leader is reachable or this
    /// replica dies while waiting.
    pub fn read_index(&self, stats: &mut RequestCtx) -> Result<u64, RaftError> {
        if !self.alive() {
            return Err(RaftError::Unavailable);
        }
        if stats.deadline_expired() {
            self.node.note_deadline_abort("read_index");
            return Err(RaftError::DeadlineExceeded);
        }
        {
            let g = self.inner.lock();
            if g.role == Role::Leader {
                return Ok(g.commit_index);
            }
        }
        const NO_LEADER: u64 = u64::MAX;
        let ci = self.read_batcher.query(|| {
            let leader = (0..self.group_size)
                .filter(|i| *i != self.id)
                .filter_map(|i| self.peer(i))
                .find(|p| p.is_leader());
            match leader {
                Some(l) if self.edge_cut(&l) => NO_LEADER,
                Some(l) => l.node.rpc_named(stats, "read_index", || l.commit_index()),
                None => NO_LEADER,
            }
        });
        if ci == NO_LEADER {
            return Err(RaftError::Unavailable);
        }

        let mut g = self.inner.lock();
        while g.last_applied < ci {
            if !self.alive() {
                return Err(RaftError::Unavailable);
            }
            self.apply_cv.wait_for(&mut g, Duration::from_millis(10));
        }
        Ok(ci)
    }

    // --- RPC handlers -----------------------------------------------------

    /// AppendEntries handler (also the heartbeat).
    pub(crate) fn append_entries(
        &self,
        term: u64,
        leader_id: usize,
        prev_index: u64,
        prev_term: u64,
        batch: Vec<LogEntry<SM::Command>>,
        leader_commit: u64,
    ) -> AppendResult {
        if !self.alive() {
            return AppendResult {
                term: 0,
                success: false,
                match_index: 0,
                reachable: false,
            };
        }
        self.node.execute(|| {
            let mut g = self.inner.lock();
            if term < g.term {
                return AppendResult {
                    term: g.term,
                    success: false,
                    match_index: 0,
                    reachable: true,
                };
            }
            if term > g.term {
                g.term = term;
                g.voted_for = None;
                self.metrics.term_changes.inc();
            }
            let new_role = if self.learner {
                Role::Learner
            } else {
                Role::Follower
            };
            self.set_role(&mut g, new_role);
            g.last_heartbeat = Instant::now();
            g.leader_hint = Some(leader_id);

            let appended = g.log.try_append(prev_index, prev_term, &batch);
            let Some(new_last) = appended else {
                // Consistency check failed; help the leader back off fast.
                let hint = g.log.last_index();
                return AppendResult {
                    term: g.term,
                    success: false,
                    match_index: hint,
                    reachable: true,
                };
            };
            let n_new = batch.len();
            drop(g);
            self.metrics.appends.add(n_new as u64);

            // Durability outside the lock: one fsync per batch when log
            // batching is on, one per entry otherwise (§5.2.3).
            if n_new > 0 {
                if self.opts.log_batching {
                    self.wal.append();
                } else {
                    for _ in 0..n_new {
                        self.wal.append();
                    }
                }
            }

            let mut g = self.inner.lock();
            let target = leader_commit.min(new_last);
            if target > g.commit_index {
                g.commit_index = target;
                self.apply_cv.notify_all();
            }
            AppendResult {
                term: g.term,
                success: true,
                match_index: prev_index + n_new as u64,
                reachable: true,
            }
        })
    }

    /// InstallSnapshot handler (Raft §7): a follower that has fallen behind
    /// the leader's compacted log receives a full snapshot image instead of
    /// entries. The image is staged for the apply thread (the sole SM
    /// mutator) and the handler waits for that install attempt, so the
    /// leader's response tells it whether to retry.
    pub(crate) fn install_snapshot(
        &self,
        term: u64,
        leader_id: usize,
        snap_index: u64,
        snap_term: u64,
        data: Arc<Vec<u8>>,
    ) -> AppendResult {
        if !self.alive() {
            return AppendResult {
                term: 0,
                success: false,
                match_index: 0,
                reachable: false,
            };
        }
        self.node.execute(|| {
            let mut g = self.inner.lock();
            if term < g.term {
                return AppendResult {
                    term: g.term,
                    success: false,
                    match_index: 0,
                    reachable: true,
                };
            }
            if term > g.term {
                g.term = term;
                g.voted_for = None;
                self.metrics.term_changes.inc();
            }
            let new_role = if self.learner {
                Role::Learner
            } else {
                Role::Follower
            };
            self.set_role(&mut g, new_role);
            g.last_heartbeat = Instant::now();
            g.leader_hint = Some(leader_id);

            if g.last_applied >= snap_index {
                // Already caught up past this image; nothing to install.
                return AppendResult {
                    term: g.term,
                    success: true,
                    match_index: g.last_applied,
                    reachable: true,
                };
            }
            mantle_obs::flight::annotate_with(|| {
                format!(
                    "raft:install_snapshot phase=transfer node={} index={snap_index} bytes={}",
                    self.node.name(),
                    data.len()
                )
            });
            g.pending_install = Some((snap_index, snap_term, data));
            let seen = g.install_seq;
            self.apply_cv.notify_all();
            // Wait (bounded) for the apply thread's install attempt; a
            // bump of `install_seq` without the apply index reaching the
            // snapshot means the attempt aborted and the leader retries.
            let deadline = Instant::now() + Duration::from_secs(2);
            while g.last_applied < snap_index && g.install_seq == seen {
                if !self.alive() || Instant::now() > deadline {
                    break;
                }
                self.apply_cv.wait_for(&mut g, Duration::from_millis(5));
            }
            g.last_heartbeat = Instant::now();
            AppendResult {
                term: g.term,
                success: g.last_applied >= snap_index,
                match_index: g.last_applied,
                reachable: true,
            }
        })
    }

    /// RequestVote handler.
    pub(crate) fn request_vote(
        &self,
        term: u64,
        candidate: usize,
        last_log_index: u64,
        last_log_term: u64,
    ) -> VoteResult {
        if !self.alive() {
            return VoteResult {
                term: 0,
                granted: false,
                reachable: false,
            };
        }
        self.node.execute(|| {
            let mut g = self.inner.lock();
            if term > g.term {
                g.term = term;
                g.voted_for = None;
                if g.role == Role::Leader || g.role == Role::Candidate {
                    self.set_role(&mut g, Role::Follower);
                }
            }
            let up_to_date = last_log_term > g.log.last_term()
                || (last_log_term == g.log.last_term() && last_log_index >= g.log.last_index());
            let granted = term >= g.term
                && up_to_date
                && !self.learner
                && (g.voted_for.is_none() || g.voted_for == Some(candidate));
            if granted {
                g.voted_for = Some(candidate);
                g.last_heartbeat = Instant::now();
            }
            VoteResult {
                term: g.term,
                granted,
                reachable: true,
            }
        })
    }

    // --- leader machinery ---------------------------------------------------

    fn advance_commit(&self, g: &mut Inner<SM::Command>) {
        if g.role != Role::Leader {
            return;
        }
        // Median-of-voters match index = highest quorum-replicated index.
        let mut matches: Vec<u64> = g.match_index[..self.n_voters].to_vec();
        matches.sort_unstable_by(|a, b| b.cmp(a));
        let quorum_index = matches[self.n_voters / 2];
        // Raft safety: only commit entries from the current term directly.
        if quorum_index > g.commit_index && g.log.term_at(quorum_index) == Some(g.term) {
            g.commit_index = quorum_index;
            self.apply_cv.notify_all();
        }
    }

    fn become_leader(self: &Arc<Self>, g: &mut Inner<SM::Command>) {
        self.metrics.leaders_elected.inc();
        self.set_role(g, Role::Leader);
        g.leader_hint = Some(self.id);
        g.leader_epoch += 1;
        let last = g.log.last_index();
        for i in 0..self.group_size {
            g.next_index[i] = last + 1;
            g.match_index[i] = 0;
        }
        // Term-start barrier: replicating it commits every prior-term entry.
        let barrier_idx = g.log.append(LogEntry {
            term: g.term,
            cmd: SM::barrier(),
        });
        g.match_index[self.id] = barrier_idx;
        self.advance_commit(g);
        self.log_cv.notify_all();
        let epoch = g.leader_epoch;
        for peer_id in 0..self.group_size {
            if peer_id == self.id {
                continue;
            }
            let me = Arc::clone(self);
            std::thread::Builder::new()
                .name(format!("raft-repl-{}-{}", self.id, peer_id))
                .spawn(move || me.replicate_loop(peer_id, epoch))
                .expect("spawn replicator");
        }
    }

    /// Bootstraps this replica as the initial leader (group construction).
    pub(crate) fn bootstrap_leader(self: &Arc<Self>) {
        let mut g = self.inner.lock();
        g.term = 1;
        self.become_leader(&mut g);
    }

    fn replicate_loop(self: Arc<Self>, peer_id: usize, epoch: u64) {
        loop {
            if self.shutdown.load(Ordering::Acquire) || !self.alive.load(Ordering::Acquire) {
                return;
            }
            // Gather the next batch (or wait up to a heartbeat interval).
            // A peer whose next entry was compacted away gets the snapshot
            // instead (Raft §7).
            enum Send<C> {
                Entries {
                    term: u64,
                    prev_index: u64,
                    prev_term: u64,
                    batch: Vec<LogEntry<C>>,
                    commit: u64,
                },
                Snapshot {
                    term: u64,
                    index: u64,
                    snap_term: u64,
                    data: Arc<Vec<u8>>,
                },
            }
            let send = {
                let mut g = self.inner.lock();
                if g.role != Role::Leader || g.leader_epoch != epoch {
                    return;
                }
                if g.log.last_index() < g.next_index[peer_id] {
                    self.log_cv.wait_for(&mut g, self.opts.heartbeat_interval);
                    if g.role != Role::Leader || g.leader_epoch != epoch {
                        return;
                    }
                }
                if g.next_index[peer_id] < g.log.first_index() {
                    // The snapshot store is always at or past the log's
                    // compaction point, so one install re-anchors the peer
                    // inside the retained suffix.
                    let s = self.snap.lock();
                    Send::Snapshot {
                        term: g.term,
                        index: s.index,
                        snap_term: s.term,
                        data: Arc::clone(&s.data),
                    }
                } else {
                    let prev_index = g.next_index[peer_id] - 1;
                    let prev_term = g.log.term_at(prev_index).unwrap_or(0);
                    let batch = g.log.slice(prev_index, self.opts.max_batch);
                    Send::Entries {
                        term: g.term,
                        prev_index,
                        prev_term,
                        batch,
                        commit: g.commit_index,
                    }
                }
            };

            let Some(peer) = self.peer(peer_id) else {
                return;
            };
            let (term, prev_index, prev_term, batch, commit) = match send {
                Send::Snapshot {
                    term,
                    index,
                    snap_term,
                    data,
                } => {
                    if self.edge_cut(&peer) {
                        std::thread::sleep(self.opts.heartbeat_interval);
                        continue;
                    }
                    let _span = mantle_obs::trace::span(
                        "install_snapshot",
                        self.node.name(),
                        mantle_obs::trace::SpanKind::Local,
                    );
                    mantle_obs::flight::annotate_with(|| {
                        format!(
                            "raft:install_snapshot phase=send to={} index={index} bytes={}",
                            peer.node.name(),
                            data.len()
                        )
                    });
                    self.installs_sent.fetch_add(1, Ordering::Relaxed);
                    mantle_rpc::net_round_trip(&self.config);
                    let resp = peer.install_snapshot(term, self.id, index, snap_term, data);
                    if !resp.reachable {
                        std::thread::sleep(self.opts.heartbeat_interval);
                        continue;
                    }
                    let mut g = self.inner.lock();
                    if resp.term > g.term {
                        g.term = resp.term;
                        g.voted_for = None;
                        self.set_role(&mut g, Role::Follower);
                        return;
                    }
                    if g.role != Role::Leader || g.leader_epoch != epoch {
                        return;
                    }
                    if resp.success {
                        g.next_index[peer_id] = resp.match_index + 1;
                        g.match_index[peer_id] = g.match_index[peer_id].max(resp.match_index);
                        self.advance_commit(&mut g);
                    } else {
                        // Install aborted on the peer; retry at
                        // heartbeat pace.
                        drop(g);
                        std::thread::sleep(self.opts.heartbeat_interval);
                    }
                    continue;
                }
                Send::Entries {
                    term,
                    prev_index,
                    prev_term,
                    batch,
                    commit,
                } => (term, prev_index, prev_term, batch, commit),
            };
            if self.edge_cut(&peer) {
                // Partitioned follower: behaves exactly like an unreachable
                // peer — the leader keeps retrying at heartbeat pace.
                std::thread::sleep(self.opts.heartbeat_interval);
                continue;
            }
            let n = batch.len() as u64;
            if n > 0 {
                self.metrics.batch.record(n);
            }
            mantle_rpc::net_round_trip(&self.config);
            let resp = peer.append_entries(term, self.id, prev_index, prev_term, batch, commit);

            if !resp.reachable {
                std::thread::sleep(self.opts.heartbeat_interval);
                continue;
            }
            let mut g = self.inner.lock();
            if resp.term > g.term {
                g.term = resp.term;
                g.voted_for = None;
                self.set_role(&mut g, Role::Follower);
                return;
            }
            if g.role != Role::Leader || g.leader_epoch != epoch {
                return;
            }
            if resp.success {
                g.next_index[peer_id] = prev_index + n + 1;
                g.match_index[peer_id] = g.match_index[peer_id].max(prev_index + n);
                self.advance_commit(&mut g);
            } else {
                // Back off using the follower's hint.
                g.next_index[peer_id] = (resp.match_index + 1).min(g.next_index[peer_id]).max(1);
                if g.next_index[peer_id] > 1 && resp.match_index + 1 == g.next_index[peer_id] {
                    // Hint already applied.
                } else if g.next_index[peer_id] > 1 {
                    g.next_index[peer_id] -= 1;
                }
            }
        }
    }

    // --- elections ---------------------------------------------------------

    pub(crate) fn tick_loop(self: Arc<Self>) {
        let mut timeout = self.random_timeout();
        loop {
            std::thread::sleep(Duration::from_millis(5));
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            if !self.alive.load(Ordering::Acquire) || self.learner {
                continue;
            }
            let should_campaign = {
                let g = self.inner.lock();
                g.role != Role::Leader && g.last_heartbeat.elapsed() > timeout
            };
            if should_campaign {
                self.campaign();
                timeout = self.random_timeout();
            }
        }
    }

    fn random_timeout(&self) -> Duration {
        // Deterministic per-call jitter from a splitmix64 step; keeps the
        // raft crate free of a rand dependency.
        use std::sync::atomic::AtomicU64;
        static SEED: AtomicU64 = AtomicU64::new(0x9E3779B97F4A7C15);
        let mut z = SEED.fetch_add(0x9E3779B97F4A7C15, Ordering::Relaxed);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        let min = self.opts.election_timeout_min.as_millis() as u64;
        let max = self.opts.election_timeout_max.as_millis() as u64;
        Duration::from_millis(min + z % (max - min).max(1))
    }

    fn campaign(self: &Arc<Self>) {
        self.metrics.elections.inc();
        self.metrics.term_changes.inc();
        let (term, last_index, last_term) = {
            let mut g = self.inner.lock();
            g.term += 1;
            self.set_role(&mut g, Role::Candidate);
            g.voted_for = Some(self.id);
            g.last_heartbeat = Instant::now();
            (g.term, g.log.last_index(), g.log.last_term())
        };
        let mut votes = 1; // Own vote.
        for peer_id in 0..self.n_voters {
            if peer_id == self.id {
                continue;
            }
            let Some(peer) = self.peer(peer_id) else {
                continue;
            };
            if self.edge_cut(&peer) {
                // A partitioned voter cannot be reached; its vote is lost.
                continue;
            }
            mantle_rpc::net_round_trip(&self.config);
            let resp = peer.request_vote(term, self.id, last_index, last_term);
            if !resp.reachable {
                continue;
            }
            if resp.term > term {
                let mut g = self.inner.lock();
                if resp.term > g.term {
                    g.term = resp.term;
                    g.voted_for = None;
                    self.set_role(&mut g, Role::Follower);
                }
                return;
            }
            if resp.granted {
                votes += 1;
            }
        }
        if votes > self.n_voters / 2 {
            let mut g = self.inner.lock();
            if g.term == term && g.role == Role::Candidate {
                self.become_leader(&mut g);
            }
        }
    }

    // --- apply loop ---------------------------------------------------------

    pub(crate) fn apply_loop(self: Arc<Self>) {
        // Entries are applied in batches and waiters are woken once per
        // batch: notifying every proposer after every entry turns the
        // applier into a thundering-herd bottleneck under write load.
        const APPLY_BATCH: u64 = 64;
        enum Work<C> {
            /// `(install_seq at collection, entries)` — stale-seq batches
            /// are discarded after a concurrent snapshot restore.
            Batch(u64, Vec<(u64, C)>),
            Install(u64, u64, Arc<Vec<u8>>),
        }
        loop {
            let work = {
                let mut g = self.inner.lock();
                loop {
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    if self.alive.load(Ordering::Acquire) {
                        if let Some((si, st, data)) = g.pending_install.take() {
                            if si > g.last_applied {
                                break Work::Install(si, st, data);
                            }
                            // Stale image (normal replication caught us up
                            // first); count the attempt so the handler
                            // stops waiting.
                            g.install_seq += 1;
                            self.apply_cv.notify_all();
                        }
                        if g.last_applied < g.commit_index {
                            let from = g.last_applied + 1;
                            let to = g.commit_index.min(g.last_applied + APPLY_BATCH);
                            let cmds: Vec<(u64, SM::Command)> = (from..=to)
                                .map(|i| {
                                    (i, g.log.get(i).expect("committed entry exists").cmd.clone())
                                })
                                .collect();
                            break Work::Batch(g.install_seq, cmds);
                        }
                    }
                    self.apply_cv.wait_for(&mut g, Duration::from_millis(20));
                }
            };
            match work {
                Work::Batch(seq, batch) => {
                    let last = batch.last().expect("non-empty batch").0;
                    for (index, cmd) in &batch {
                        self.sm.apply(*index, cmd);
                    }
                    let mut g = self.inner.lock();
                    if g.install_seq != seq {
                        // A snapshot restore (recover or install) rewound the
                        // apply index while this batch was in flight; its
                        // entries will be re-applied from the restored image.
                        continue;
                    }
                    debug_assert_eq!(g.last_applied + 1, batch[0].0);
                    g.last_applied = last;
                    self.apply_cv.notify_all();
                    let (applied, log_bytes) = (g.last_applied, g.log.bytes());
                    self.metrics.log_bytes.set(log_bytes as i64);
                    drop(g);
                    self.maybe_snapshot(applied, log_bytes);
                }
                Work::Install(si, st, data) => self.finish_install(si, st, data),
            }
        }
    }

    // --- snapshotting --------------------------------------------------------

    /// Considers a snapshot after the apply index advanced (apply thread
    /// only): due when `snapshot_every` applied entries accumulated since
    /// the last snapshot *or* the retained log crossed the bytes watermark.
    fn maybe_snapshot(&self, applied: u64, log_bytes: u64) {
        if self.opts.snapshot_every == 0 {
            return;
        }
        let last = self.snap.lock().index;
        let due_count = applied >= last + self.opts.snapshot_every;
        let due_bytes = self.opts.log_watermark_bytes > 0
            && log_bytes > self.opts.log_watermark_bytes
            && applied > last;
        if due_count || due_bytes {
            self.take_snapshot(applied);
        }
    }

    /// Captures a snapshot at `applied` (apply thread only, so the state
    /// machine is quiescent), acknowledges it with a WAL checkpoint record,
    /// then compacts the log prefix. Both fault points follow the same
    /// discard-on-abort discipline as shard migration: an injected crash
    /// mid-write leaves a torn image behind and the previous snapshot
    /// authoritative; a torn checkpoint record is no acknowledgment, so the
    /// image is dropped and the log keeps its prefix.
    fn take_snapshot(&self, applied: u64) {
        let _span = mantle_obs::trace::span(
            "snapshot_write",
            self.node.name(),
            mantle_obs::trace::SpanKind::Local,
        );
        let framed = frame(self.sm.snapshot());
        if self
            .node
            .faults()
            .is_some_and(|p| p.snapshot_write_fails(self.node.name()))
        {
            // Crash mid-write: only a prefix of the frame reached disk.
            let torn = framed[..framed.len() / 2].to_vec();
            *self.torn_snap.lock() = Some(Arc::new(torn));
            self.metrics.snapshot_aborts.inc();
            mantle_obs::flight::annotate_with(|| {
                format!(
                    "raft:snapshot phase=abort_write node={} index={applied}",
                    self.node.name()
                )
            });
            return;
        }
        if self.wal.append_checkpoint(applied).is_err() {
            self.metrics.snapshot_aborts.inc();
            mantle_obs::flight::annotate_with(|| {
                format!(
                    "raft:snapshot phase=abort_checkpoint node={} index={applied}",
                    self.node.name()
                )
            });
            return;
        }
        let mut g = self.inner.lock();
        let Some(term) = g.log.term_at(applied) else {
            return; // Already compacted past (a newer install superseded us).
        };
        {
            let mut s = self.snap.lock();
            if applied <= s.index {
                return;
            }
            *s = Snapshot {
                index: applied,
                term,
                data: Arc::new(framed),
            };
        }
        *self.torn_snap.lock() = None;
        g.log
            .compact(applied.saturating_sub(self.opts.snapshot_keep_entries));
        let log_bytes = g.log.bytes();
        drop(g);
        self.metrics.snapshots.inc();
        self.snapshots_taken.fetch_add(1, Ordering::Relaxed);
        self.metrics.log_bytes.set(log_bytes as i64);
        mantle_obs::flight::annotate_with(|| {
            format!(
                "raft:snapshot node={} index={applied} log_bytes={log_bytes}",
                self.node.name()
            )
        });
    }

    /// Applies a staged InstallSnapshot image (apply thread only). An
    /// injected `snap_install` crash or a torn image aborts the install and
    /// leaves the pre-install state authoritative — the leader retries.
    fn finish_install(&self, si: u64, st: u64, data: Arc<Vec<u8>>) {
        let faulted = self
            .node
            .faults()
            .is_some_and(|p| p.snapshot_install_fails(self.node.name()));
        let image = if faulted { None } else { unframe(&data) };
        let Some(image) = image else {
            self.metrics.snapshot_aborts.inc();
            mantle_obs::flight::annotate_with(|| {
                format!(
                    "raft:install_snapshot phase=abort node={} index={si}",
                    self.node.name()
                )
            });
            let mut g = self.inner.lock();
            g.install_seq += 1;
            self.apply_cv.notify_all();
            return;
        };
        let _span = mantle_obs::trace::span(
            "snapshot_restore",
            self.node.name(),
            mantle_obs::trace::SpanKind::Local,
        );
        mantle_obs::flight::annotate_with(|| {
            format!(
                "raft:install_snapshot phase=restore node={} index={si} bytes={}",
                self.node.name(),
                data.len()
            )
        });
        self.sm.restore(image);
        let mut g = self.inner.lock();
        g.log.install_snapshot(si, st);
        if g.last_applied < si {
            g.last_applied = si;
        }
        if g.commit_index < si {
            g.commit_index = si;
        }
        {
            let mut s = self.snap.lock();
            if si > s.index {
                *s = Snapshot {
                    index: si,
                    term: st,
                    data,
                };
            }
        }
        *self.torn_snap.lock() = None;
        g.install_seq += 1;
        self.installs_applied.fetch_add(1, Ordering::Relaxed);
        self.metrics.installs.inc();
        self.metrics.log_bytes.set(g.log.bytes() as i64);
        self.apply_cv.notify_all();
    }
}
