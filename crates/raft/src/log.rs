//! The replicated log.

/// One log entry: a term and a state-machine command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEntry<C> {
    /// Term in which the entry was appended by a leader.
    pub term: u64,
    /// The command to apply.
    pub cmd: C,
}

/// In-memory log with 1-based external indices (index 0 = "empty log").
#[derive(Debug)]
pub struct RaftLog<C> {
    entries: Vec<LogEntry<C>>,
}

impl<C: Clone> Default for RaftLog<C> {
    fn default() -> Self {
        RaftLog {
            entries: Vec::new(),
        }
    }
}

impl<C: Clone> RaftLog<C> {
    /// Index of the last entry (0 when empty).
    pub fn last_index(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Term of the last entry (0 when empty).
    pub fn last_term(&self) -> u64 {
        self.entries.last().map_or(0, |e| e.term)
    }

    /// Term of the entry at `index` (0 for index 0; `None` past the end).
    pub fn term_at(&self, index: u64) -> Option<u64> {
        if index == 0 {
            return Some(0);
        }
        self.entries.get(index as usize - 1).map(|e| e.term)
    }

    /// Appends one entry, returning its index.
    pub fn append(&mut self, entry: LogEntry<C>) -> u64 {
        self.entries.push(entry);
        self.entries.len() as u64
    }

    /// The entry at 1-based `index`.
    pub fn get(&self, index: u64) -> Option<&LogEntry<C>> {
        if index == 0 {
            return None;
        }
        self.entries.get(index as usize - 1)
    }

    /// Clones entries in `(from, to]` (1-based, `from` exclusive), capped at
    /// `max` entries — the replication batch.
    pub fn slice(&self, from: u64, max: usize) -> Vec<LogEntry<C>> {
        let start = from as usize;
        let end = (start + max).min(self.entries.len());
        if start >= end {
            return Vec::new();
        }
        self.entries[start..end].to_vec()
    }

    /// Follower-side append: verifies the `(prev_index, prev_term)`
    /// consistency check, truncates conflicting suffixes, and appends the
    /// missing entries. Returns the new last index, or `None` when the
    /// consistency check fails.
    pub fn try_append(
        &mut self,
        prev_index: u64,
        prev_term: u64,
        batch: &[LogEntry<C>],
    ) -> Option<u64> {
        match self.term_at(prev_index) {
            Some(t) if t == prev_term => {}
            _ => return None,
        }
        for (i, entry) in batch.iter().enumerate() {
            let index = prev_index + 1 + i as u64;
            match self.term_at(index) {
                Some(t) if t == entry.term => continue, // Already have it.
                Some(_) => {
                    // Conflict: truncate this and everything after.
                    self.entries.truncate(index as usize - 1);
                    self.entries.push(entry.clone());
                }
                None => {
                    self.entries.push(entry.clone());
                }
            }
        }
        Some(self.last_index().max(prev_index + batch.len() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(term: u64, cmd: u32) -> LogEntry<u32> {
        LogEntry { term, cmd }
    }

    #[test]
    fn append_and_indexing() {
        let mut log = RaftLog::default();
        assert_eq!(log.last_index(), 0);
        assert_eq!(log.term_at(0), Some(0));
        assert_eq!(log.append(e(1, 10)), 1);
        assert_eq!(log.append(e(1, 11)), 2);
        assert_eq!(log.last_index(), 2);
        assert_eq!(log.last_term(), 1);
        assert_eq!(log.get(1).unwrap().cmd, 10);
        assert!(log.get(0).is_none());
        assert!(log.get(3).is_none());
    }

    #[test]
    fn slice_batches() {
        let mut log = RaftLog::default();
        for i in 0..10 {
            log.append(e(1, i));
        }
        let batch = log.slice(3, 4);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch[0].cmd, 3);
        assert!(log.slice(10, 4).is_empty());
        assert_eq!(log.slice(8, 100).len(), 2);
    }

    #[test]
    fn try_append_happy_path() {
        let mut log = RaftLog::default();
        assert_eq!(log.try_append(0, 0, &[e(1, 0), e(1, 1)]), Some(2));
        assert_eq!(log.try_append(2, 1, &[e(1, 2)]), Some(3));
        assert_eq!(log.last_index(), 3);
    }

    #[test]
    fn try_append_rejects_gap_and_term_mismatch() {
        let mut log = RaftLog::default();
        log.try_append(0, 0, &[e(1, 0)]);
        assert_eq!(log.try_append(5, 1, &[e(1, 9)]), None); // Gap.
        assert_eq!(log.try_append(1, 9, &[e(1, 9)]), None); // Wrong prev term.
    }

    #[test]
    fn try_append_truncates_conflicts() {
        let mut log = RaftLog::default();
        log.try_append(0, 0, &[e(1, 0), e(1, 1), e(1, 2)]);
        // New leader in term 2 overwrites index 2 onwards.
        assert_eq!(log.try_append(1, 1, &[e(2, 7)]), Some(2));
        assert_eq!(log.last_index(), 2);
        assert_eq!(log.get(2).unwrap().term, 2);
        assert_eq!(log.get(2).unwrap().cmd, 7);
    }

    #[test]
    fn try_append_idempotent_for_duplicates() {
        let mut log = RaftLog::default();
        log.try_append(0, 0, &[e(1, 0), e(1, 1)]);
        // Retransmission of the same batch leaves the log unchanged.
        assert_eq!(log.try_append(0, 0, &[e(1, 0), e(1, 1)]), Some(2));
        assert_eq!(log.last_index(), 2);
    }
}
