//! The replicated log, with snapshot-based compaction (§4.11).

/// One log entry: a term and a state-machine command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEntry<C> {
    /// Term in which the entry was appended by a leader.
    pub term: u64,
    /// The command to apply.
    pub cmd: C,
}

/// In-memory log with 1-based external indices (index 0 = "empty log").
///
/// Compaction replaces the prefix `[1, snapshot_index]` with a snapshot
/// marker: the entries are gone, but their cumulative effect lives in the
/// replica's state-machine snapshot and `(snapshot_index, snapshot_term)`
/// anchor the consistency check for the first retained entry.
#[derive(Debug)]
pub struct RaftLog<C> {
    /// Entries at indices `snapshot_index + 1 ..= last_index`.
    entries: Vec<LogEntry<C>>,
    /// Index of the last entry folded into the snapshot (0 = none).
    snapshot_index: u64,
    /// Term of the entry at `snapshot_index`.
    snapshot_term: u64,
}

impl<C: Clone> Default for RaftLog<C> {
    fn default() -> Self {
        RaftLog {
            entries: Vec::new(),
            snapshot_index: 0,
            snapshot_term: 0,
        }
    }
}

impl<C: Clone> RaftLog<C> {
    /// Index of the last entry (0 when empty).
    pub fn last_index(&self) -> u64 {
        self.snapshot_index + self.entries.len() as u64
    }

    /// Term of the last entry (the snapshot term when no entries remain).
    pub fn last_term(&self) -> u64 {
        self.entries.last().map_or(self.snapshot_term, |e| e.term)
    }

    /// Index of the last entry covered by the local snapshot (0 = none).
    pub fn snapshot_index(&self) -> u64 {
        self.snapshot_index
    }

    /// Term of the entry at [`RaftLog::snapshot_index`].
    pub fn snapshot_term(&self) -> u64 {
        self.snapshot_term
    }

    /// The first index still present as an entry (`snapshot_index + 1`).
    pub fn first_index(&self) -> u64 {
        self.snapshot_index + 1
    }

    /// Approximate in-memory footprint of the retained entries; drives the
    /// `raft_log_bytes` gauge and the bytes-watermark compaction trigger.
    pub fn bytes(&self) -> u64 {
        // Term + index bookkeeping plus the inline command payload. Heap
        // data inside C (Arc'd names, paths) is shared with the state
        // machine, so the inline size is the honest marginal cost.
        self.entries.len() as u64 * (16 + std::mem::size_of::<C>() as u64)
    }

    /// Position of external `index` in `entries`; `None` when compacted or
    /// past the end.
    fn slot(&self, index: u64) -> Option<usize> {
        if index <= self.snapshot_index || index > self.last_index() {
            return None;
        }
        Some((index - self.snapshot_index - 1) as usize)
    }

    /// Term of the entry at `index`. `Some(snapshot_term)` at the snapshot
    /// index itself (0 for index 0 of an uncompacted log); `None` for
    /// compacted-away or out-of-range indices.
    pub fn term_at(&self, index: u64) -> Option<u64> {
        if index == self.snapshot_index {
            return Some(self.snapshot_term);
        }
        self.slot(index).map(|s| self.entries[s].term)
    }

    /// Appends one entry, returning its index.
    pub fn append(&mut self, entry: LogEntry<C>) -> u64 {
        self.entries.push(entry);
        self.last_index()
    }

    /// The entry at 1-based `index` (`None` when compacted away).
    pub fn get(&self, index: u64) -> Option<&LogEntry<C>> {
        self.slot(index).map(|s| &self.entries[s])
    }

    /// Clones entries in `(from, to]` (1-based, `from` exclusive), capped at
    /// `max` entries — the replication batch. `from` must be at or past the
    /// snapshot index (the caller ships a snapshot otherwise).
    pub fn slice(&self, from: u64, max: usize) -> Vec<LogEntry<C>> {
        debug_assert!(from >= self.snapshot_index, "sliced into compacted prefix");
        let start = (from.max(self.snapshot_index) - self.snapshot_index) as usize;
        let end = (start + max).min(self.entries.len());
        if start >= end {
            return Vec::new();
        }
        self.entries[start..end].to_vec()
    }

    /// Drops entries `[first_index, through]` — they are covered by a
    /// snapshot at `through` or beyond. No-op when `through` is not past
    /// the current snapshot index or names an unknown entry.
    pub fn compact(&mut self, through: u64) {
        if through <= self.snapshot_index {
            return;
        }
        let Some(term) = self.term_at(through) else {
            return;
        };
        self.entries
            .drain(..(through - self.snapshot_index) as usize);
        self.snapshot_index = through;
        self.snapshot_term = term;
    }

    /// Replaces the log prefix with an installed snapshot at
    /// `(index, term)`. When the local log already contains that entry the
    /// suffix past it is retained (Raft §7: "if ... the follower's log
    /// matches the snapshot's last entry, entries after it are kept");
    /// otherwise the whole log is discarded.
    pub fn install_snapshot(&mut self, index: u64, term: u64) {
        if self.term_at(index) == Some(term) {
            self.compact(index);
            return;
        }
        self.entries.clear();
        self.snapshot_index = index;
        self.snapshot_term = term;
    }

    /// Follower-side append: verifies the `(prev_index, prev_term)`
    /// consistency check, truncates conflicting suffixes, and appends the
    /// missing entries. Returns the new last index, or `None` when the
    /// consistency check fails.
    pub fn try_append(
        &mut self,
        prev_index: u64,
        prev_term: u64,
        batch: &[LogEntry<C>],
    ) -> Option<u64> {
        if prev_index < self.snapshot_index {
            // The prefix up to the snapshot index is committed and
            // immutable, so the overlapping head of the batch is already
            // reflected in the snapshot: re-anchor at the snapshot and
            // append only the genuinely new suffix.
            let skip = (self.snapshot_index - prev_index) as usize;
            if skip >= batch.len() {
                return Some(self.last_index().max(prev_index + batch.len() as u64));
            }
            return self.try_append(self.snapshot_index, self.snapshot_term, &batch[skip..]);
        }
        match self.term_at(prev_index) {
            Some(t) if t == prev_term => {}
            _ => return None,
        }
        for (i, entry) in batch.iter().enumerate() {
            let index = prev_index + 1 + i as u64;
            match self.term_at(index) {
                Some(t) if t == entry.term => continue, // Already have it.
                Some(_) => {
                    // Conflict: truncate this and everything after.
                    self.entries
                        .truncate((index - self.snapshot_index - 1) as usize);
                    self.entries.push(entry.clone());
                }
                None => {
                    self.entries.push(entry.clone());
                }
            }
        }
        Some(self.last_index().max(prev_index + batch.len() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(term: u64, cmd: u32) -> LogEntry<u32> {
        LogEntry { term, cmd }
    }

    #[test]
    fn append_and_indexing() {
        let mut log = RaftLog::default();
        assert_eq!(log.last_index(), 0);
        assert_eq!(log.term_at(0), Some(0));
        assert_eq!(log.append(e(1, 10)), 1);
        assert_eq!(log.append(e(1, 11)), 2);
        assert_eq!(log.last_index(), 2);
        assert_eq!(log.last_term(), 1);
        assert_eq!(log.get(1).unwrap().cmd, 10);
        assert!(log.get(0).is_none());
        assert!(log.get(3).is_none());
    }

    #[test]
    fn slice_batches() {
        let mut log = RaftLog::default();
        for i in 0..10 {
            log.append(e(1, i));
        }
        let batch = log.slice(3, 4);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch[0].cmd, 3);
        assert!(log.slice(10, 4).is_empty());
        assert_eq!(log.slice(8, 100).len(), 2);
    }

    #[test]
    fn try_append_happy_path() {
        let mut log = RaftLog::default();
        assert_eq!(log.try_append(0, 0, &[e(1, 0), e(1, 1)]), Some(2));
        assert_eq!(log.try_append(2, 1, &[e(1, 2)]), Some(3));
        assert_eq!(log.last_index(), 3);
    }

    #[test]
    fn try_append_rejects_gap_and_term_mismatch() {
        let mut log = RaftLog::default();
        log.try_append(0, 0, &[e(1, 0)]);
        assert_eq!(log.try_append(5, 1, &[e(1, 9)]), None); // Gap.
        assert_eq!(log.try_append(1, 9, &[e(1, 9)]), None); // Wrong prev term.
    }

    #[test]
    fn try_append_truncates_conflicts() {
        let mut log = RaftLog::default();
        log.try_append(0, 0, &[e(1, 0), e(1, 1), e(1, 2)]);
        // New leader in term 2 overwrites index 2 onwards.
        assert_eq!(log.try_append(1, 1, &[e(2, 7)]), Some(2));
        assert_eq!(log.last_index(), 2);
        assert_eq!(log.get(2).unwrap().term, 2);
        assert_eq!(log.get(2).unwrap().cmd, 7);
    }

    #[test]
    fn try_append_idempotent_for_duplicates() {
        let mut log = RaftLog::default();
        log.try_append(0, 0, &[e(1, 0), e(1, 1)]);
        // Retransmission of the same batch leaves the log unchanged.
        assert_eq!(log.try_append(0, 0, &[e(1, 0), e(1, 1)]), Some(2));
        assert_eq!(log.last_index(), 2);
    }

    #[test]
    fn compact_drops_prefix_and_keeps_suffix_addressable() {
        let mut log = RaftLog::default();
        for i in 0..10 {
            log.append(e(1, i));
        }
        log.compact(6);
        assert_eq!(log.snapshot_index(), 6);
        assert_eq!(log.snapshot_term(), 1);
        assert_eq!(log.first_index(), 7);
        assert_eq!(log.last_index(), 10);
        assert!(log.get(6).is_none(), "compacted entries are gone");
        assert_eq!(log.get(7).unwrap().cmd, 6);
        assert_eq!(log.term_at(6), Some(1), "snapshot anchor keeps its term");
        assert_eq!(log.term_at(3), None);
        // Slicing from the snapshot boundary yields the retained suffix.
        let batch = log.slice(6, 100);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch[0].cmd, 6);
        // Compacting backwards or past the end is a no-op.
        log.compact(4);
        log.compact(99);
        assert_eq!(log.snapshot_index(), 6);
    }

    #[test]
    fn try_append_reanchors_batches_overlapping_the_snapshot() {
        let mut log = RaftLog::default();
        for i in 0..5 {
            log.append(e(1, i));
        }
        log.compact(4);
        // Leader replays (2..=6]; entries 3-4 are under the snapshot, 5
        // already present, 6 is new.
        let batch = [e(1, 2), e(1, 3), e(1, 4), e(1, 5)];
        assert_eq!(log.try_append(2, 1, &batch), Some(6));
        assert_eq!(log.get(6).unwrap().cmd, 5);
        // A batch entirely under the snapshot succeeds without change.
        assert_eq!(log.try_append(0, 0, &[e(1, 0), e(1, 1)]), Some(6));
        assert_eq!(log.last_index(), 6);
    }

    #[test]
    fn install_snapshot_keeps_matching_suffix() {
        let mut log = RaftLog::default();
        for i in 0..8 {
            log.append(e(1, i));
        }
        // Snapshot at an entry we hold: suffix survives.
        log.install_snapshot(5, 1);
        assert_eq!(log.snapshot_index(), 5);
        assert_eq!(log.last_index(), 8);
        assert_eq!(log.get(6).unwrap().cmd, 5);
        // Snapshot past our log (or conflicting): everything is replaced.
        log.install_snapshot(20, 3);
        assert_eq!(log.snapshot_index(), 20);
        assert_eq!(log.last_index(), 20);
        assert_eq!(log.last_term(), 3);
        assert!(log.slice(20, 10).is_empty());
    }

    #[test]
    fn bytes_shrink_on_compaction() {
        let mut log = RaftLog::default();
        for i in 0..100 {
            log.append(e(1, i));
        }
        let before = log.bytes();
        log.compact(90);
        assert!(log.bytes() < before);
        assert_eq!(log.bytes(), 10 * (16 + std::mem::size_of::<u32>() as u64));
    }
}
