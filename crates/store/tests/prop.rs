//! Property tests: KvStore against a BTreeMap model; LockManager
//! compatibility matrix.

use std::collections::BTreeMap;

use mantle_store::{KvStore, LockManager, LockMode, RowKey};
use mantle_types::{InodeId, TxnId};
use proptest::prelude::*;

fn arb_key() -> impl Strategy<Value = RowKey> {
    (
        0u64..6,
        prop::sample::select(vec!["a", "b", "/_ATTR", "c"]),
        0u64..4,
    )
        .prop_map(|(pid, name, ts)| RowKey {
            pid: InodeId(pid),
            name: name.into(),
            ts: TxnId(ts),
        })
}

#[derive(Clone, Debug)]
enum Op {
    Put(RowKey, u32),
    PutIfAbsent(RowKey, u32),
    Delete(RowKey),
    ScanDir(u64),
    ScanVersions(u64, &'static str),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_key(), any::<u32>()).prop_map(|(k, v)| Op::Put(k, v)),
        (arb_key(), any::<u32>()).prop_map(|(k, v)| Op::PutIfAbsent(k, v)),
        arb_key().prop_map(Op::Delete),
        (0u64..6).prop_map(Op::ScanDir),
        ((0u64..6), prop::sample::select(vec!["a", "/_ATTR"]))
            .prop_map(|(p, n)| Op::ScanVersions(p, n)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn kv_store_matches_btreemap_model(ops in prop::collection::vec(arb_op(), 1..80)) {
        let store: KvStore<u32> = KvStore::new();
        let mut model: BTreeMap<RowKey, u32> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    prop_assert_eq!(store.put(k.clone(), v), model.insert(k, v));
                }
                Op::PutIfAbsent(k, v) => {
                    let fresh = store.put_if_absent(k.clone(), v);
                    prop_assert_eq!(fresh, !model.contains_key(&k));
                    model.entry(k).or_insert(v);
                }
                Op::Delete(k) => {
                    prop_assert_eq!(store.delete(&k), model.remove(&k));
                }
                Op::ScanDir(pid) => {
                    let got = store.scan_dir(InodeId(pid), "", usize::MAX);
                    let want: Vec<(RowKey, u32)> = model
                        .iter()
                        .filter(|(k, _)| k.pid == InodeId(pid))
                        .map(|(k, v)| (k.clone(), *v))
                        .collect();
                    prop_assert_eq!(got, want);
                }
                Op::ScanVersions(pid, name) => {
                    let got = store.scan_versions(InodeId(pid), name);
                    let want: Vec<(RowKey, u32)> = model
                        .iter()
                        .filter(|(k, _)| k.pid == InodeId(pid) && k.name.as_ref() == name)
                        .map(|(k, v)| (k.clone(), *v))
                        .collect();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(store.len(), model.len());
        }
    }

    /// The lock manager's compatibility matrix: shared/shared compatible,
    /// anything with exclusive incompatible — across arbitrary interleaved
    /// acquisitions and releases.
    #[test]
    fn lock_manager_compatibility(
        steps in prop::collection::vec(
            ((0u64..3), (1u64..5), any::<bool>(), any::<bool>()), 1..60
        )
    ) {
        let lm = LockManager::new(8);
        // (key, txn) -> mode currently held.
        let mut held: BTreeMap<(u64, u64), LockMode> = BTreeMap::new();
        for (key_id, txn, exclusive, release) in steps {
            let key = RowKey::base(InodeId(key_id), "row");
            let txn_id = TxnId(txn);
            if release {
                lm.unlock(&key, txn_id);
                held.remove(&(key_id, txn));
                continue;
            }
            let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
            let result = lm.try_lock(&key, txn_id, mode);
            // Expected: grant iff no *other* txn holds an incompatible mode
            // (and for upgrades, we are the sole holder).
            let others: Vec<LockMode> = held
                .iter()
                .filter(|((k, t), _)| *k == key_id && *t != txn)
                .map(|(_, m)| *m)
                .collect();
            let own = held.get(&(key_id, txn)).copied();
            let expect_grant = match mode {
                LockMode::Shared => {
                    own == Some(LockMode::Exclusive)
                        || !others.contains(&LockMode::Exclusive)
                }
                LockMode::Exclusive => others.is_empty(),
            };
            prop_assert_eq!(result.is_ok(), expect_grant, "key {} txn {} mode {:?} others {:?} own {:?}", key_id, txn, mode, others, own);
            if result.is_ok() {
                // Shared after exclusive keeps the stronger mode.
                let stored = match (own, mode) {
                    (Some(LockMode::Exclusive), LockMode::Shared) => LockMode::Exclusive,
                    _ => mode,
                };
                held.insert((key_id, txn), stored);
            }
        }
    }
}
