//! Write-ahead log with group commit.
//!
//! Durable commits pay an fsync. Under load, many transactions commit
//! concurrently; group commit lets them share a single flush: the first
//! committer becomes the batch leader, performs one injected fsync for
//! every waiter that joined while the previous flush was in flight, and
//! wakes them. This is the same amortization Mantle applies to the
//! IndexNode's Raft log (§5.2.3, "batched Raft submissions"); TafDB shards
//! use it for transaction durability.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mantle_obs::{Counter, HistogramMetric};
use parking_lot::{Condvar, Mutex};

use mantle_rpc::faults::{FaultPlan, FaultSlot};
use mantle_types::{MetaError, SimConfig};

/// WAL metric handles, labeled by the owning subsystem (`scope="raft"`,
/// `scope="tafdb"`, ...).
struct WalMetrics {
    /// `wal_appends_total{scope=...}` — records appended.
    appends: Counter,
    /// `wal_fsyncs_total{scope=...}` — physical fsyncs performed.
    fsyncs: Counter,
    /// `wal_fsync_retries_total{scope=...}` — injected fsync failures the
    /// WAL absorbed by retrying before acknowledging.
    fsync_retries: Counter,
    /// `wal_batch_records{scope=...}` — records made durable per fsync.
    batch: HistogramMetric,
}

impl WalMetrics {
    fn new(scope: &str) -> Self {
        let labels = [("scope", scope)];
        WalMetrics {
            appends: mantle_obs::counter("wal_appends_total", &labels),
            fsyncs: mantle_obs::counter("wal_fsyncs_total", &labels),
            fsync_retries: mantle_obs::counter("wal_fsync_retries_total", &labels),
            batch: mantle_obs::histogram("wal_batch_records", &labels),
        }
    }
}

#[derive(Default)]
struct State {
    /// Sequence number of the last durable batch.
    flushed: u64,
    /// Sequence number of the last enqueued record.
    enqueued: u64,
    /// Whether a leader is currently flushing.
    flushing: bool,
}

/// One record in the fault-visible record log (see
/// [`GroupCommitWal::append_record`]).
#[derive(Clone, Copy)]
struct Record {
    payload: u64,
    /// Checkpoint marker ([`GroupCommitWal::append_checkpoint`]): recovery
    /// truncates everything before the latest durable checkpoint.
    checkpoint: bool,
}

#[derive(Default)]
struct RecordLog {
    /// Records in append order; the tail past `durable` is *torn* (written
    /// but never fsynced) and is discarded by recovery.
    entries: Vec<Record>,
    /// Number of leading entries that are durable.
    durable: usize,
}

/// A WAL whose appends share injected fsyncs when `group_commit` is on.
pub struct GroupCommitWal {
    state: Mutex<State>,
    cv: Condvar,
    config: SimConfig,
    group_commit: bool,
    scope: String,
    fsyncs: AtomicU64,
    appends: AtomicU64,
    metrics: WalMetrics,
    faults: FaultSlot,
    records: Mutex<RecordLog>,
}

impl GroupCommitWal {
    /// Creates a WAL. With `group_commit = false` every append pays its own
    /// fsync (the un-batched baseline of Figure 16).
    pub fn new(config: SimConfig, group_commit: bool) -> Self {
        Self::new_scoped(config, group_commit, "wal")
    }

    /// [`GroupCommitWal::new`] with a metric label naming the owning
    /// subsystem (`wal_appends_total{scope="raft"}` vs `scope="tafdb"`).
    pub fn new_scoped(config: SimConfig, group_commit: bool, scope: &str) -> Self {
        GroupCommitWal {
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            config,
            group_commit,
            scope: scope.to_string(),
            fsyncs: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            metrics: WalMetrics::new(scope),
            faults: FaultSlot::new(),
            records: Mutex::new(RecordLog::default()),
        }
    }

    /// Installs (or clears) the fault plan whose `wal_fsync` faults this
    /// WAL consults. Costs one relaxed atomic load per fsync when empty.
    pub fn set_faults(&self, plan: Option<Arc<FaultPlan>>) {
        self.faults.install(plan);
    }

    /// Appends one record and returns once it is durable.
    pub fn append(&self) {
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.metrics.appends.inc();
        if !self.group_commit {
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
            self.metrics.fsyncs.inc();
            self.metrics.batch.record(1);
            self.fsync_retrying();
            return;
        }

        let mut state = self.state.lock();
        state.enqueued += 1;
        let my_seq = state.enqueued;
        loop {
            if state.flushed >= my_seq {
                return;
            }
            if !state.flushing {
                // Become the batch leader: flush everything enqueued so far.
                state.flushing = true;
                let flush_to = state.enqueued;
                let batch = flush_to - state.flushed;
                drop(state);

                self.fsyncs.fetch_add(1, Ordering::Relaxed);
                self.metrics.fsyncs.inc();
                self.metrics.batch.record(batch);
                self.fsync_retrying();

                state = self.state.lock();
                state.flushed = state.flushed.max(flush_to);
                state.flushing = false;
                self.cv.notify_all();
                if state.flushed >= my_seq {
                    return;
                }
            } else {
                self.cv.wait(&mut state);
            }
        }
    }

    /// One *successful* fsync for the infallible [`GroupCommitWal::append`]
    /// path: an injected `wal_fsync` fault burns the device time and is
    /// retried before acknowledging (the storage engine absorbs transient
    /// write errors internally), so durability guarantees are unchanged.
    fn fsync_retrying(&self) {
        for _ in 0..10_000 {
            if let Some(plan) = self.faults.get() {
                if plan.wal_fsync_fails(&self.scope) {
                    self.metrics.fsync_retries.inc();
                    mantle_obs::flight::annotate_with(|| {
                        format!("wal:fsync_retry scope={}", self.scope)
                    });
                    mantle_rpc::fsync(&self.config);
                    continue;
                }
            }
            mantle_rpc::fsync(&self.config);
            return;
        }
    }

    /// One fsync attempt that *surfaces* an injected failure instead of
    /// retrying. Returns `false` on failure (the device time is still
    /// burned).
    fn fsync_once(&self) -> bool {
        let failed = self
            .faults
            .get()
            .map(|plan| plan.wal_fsync_fails(&self.scope))
            .unwrap_or(false);
        if failed {
            mantle_obs::flight::annotate_with(|| format!("wal:fsync_torn scope={}", self.scope));
        }
        mantle_rpc::fsync(&self.config);
        !failed
    }

    /// Appends `payload` to the fault-visible record log and returns its
    /// index once durable.
    ///
    /// Unlike [`GroupCommitWal::append`], an injected fsync failure here is
    /// *not* absorbed: the record stays in the log tail as a **torn**
    /// record — written but never acknowledged — and the caller gets
    /// [`MetaError::Transient`]. Recovery ([`GroupCommitWal::recover`])
    /// discards the torn tail, so an `Ok` from this method is a durability
    /// acknowledgment and an `Err` guarantees the record will not be
    /// replayed.
    pub fn append_record(&self, payload: u64) -> Result<u64, MetaError> {
        self.push_record(payload, false)
    }

    /// Appends a **checkpoint** record: an acknowledgment that all state up
    /// to `payload` (an applied log index, a snapshot id, ...) is captured
    /// elsewhere, so everything logged before it is dead weight. Recovery
    /// ([`GroupCommitWal::recover`]) truncates the log to the latest durable
    /// checkpoint. Same torn-record semantics as
    /// [`GroupCommitWal::append_record`]: an `Err` means the checkpoint was
    /// never acknowledged and recovery will not truncate on it.
    pub fn append_checkpoint(&self, payload: u64) -> Result<u64, MetaError> {
        self.push_record(payload, true)
    }

    fn push_record(&self, payload: u64, checkpoint: bool) -> Result<u64, MetaError> {
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.metrics.appends.inc();
        let mut log = self.records.lock();
        // After a failed fsync the writer re-seeks to the durable frontier
        // (as real WAL writers do after EIO), so a torn record can never be
        // made durable by a *later* record's fsync.
        let durable = log.durable;
        log.entries.truncate(durable);
        log.entries.push(Record {
            payload,
            checkpoint,
        });
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.metrics.fsyncs.inc();
        if !self.fsync_once() {
            // Torn: the bytes may be on disk, but no ack was given and the
            // durable frontier did not advance.
            return Err(MetaError::Transient {
                kind: "wal_fsync".to_string(),
                at: self.scope.clone(),
            });
        }
        log.durable = log.entries.len();
        self.metrics.batch.record(1);
        Ok((log.durable - 1) as u64)
    }

    /// Simulates a crash + restart of the owning store: the torn tail of
    /// the record log (appended but never successfully fsynced) is
    /// discarded, exactly as physical log recovery drops records that fail
    /// their checksum, and the log is truncated to its latest durable
    /// checkpoint (replaying records already captured by a checkpointed
    /// snapshot would be O(history) recovery). Returns the number of torn
    /// records dropped.
    pub fn recover(&self) -> usize {
        let mut log = self.records.lock();
        let torn = log.entries.len() - log.durable;
        let durable = log.durable;
        log.entries.truncate(durable);
        if let Some(ck) = log.entries.iter().rposition(|r| r.checkpoint) {
            // The checkpoint record itself is kept as the truncation anchor.
            log.entries.drain(..ck);
            log.durable = log.entries.len();
        }
        torn
    }

    /// The acknowledged (durable) non-checkpoint records, in append order.
    pub fn durable_records(&self) -> Vec<u64> {
        let log = self.records.lock();
        log.entries[..log.durable]
            .iter()
            .filter(|r| !r.checkpoint)
            .map(|r| r.payload)
            .collect()
    }

    /// Payload of the latest durable checkpoint record, if any.
    pub fn last_checkpoint(&self) -> Option<u64> {
        let log = self.records.lock();
        log.entries[..log.durable]
            .iter()
            .rev()
            .find(|r| r.checkpoint)
            .map(|r| r.payload)
    }

    /// Number of physical fsyncs performed.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Number of records appended.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ungrouped_wal_fsyncs_every_append() {
        let wal = GroupCommitWal::new(SimConfig::instant(), false);
        for _ in 0..10 {
            wal.append();
        }
        assert_eq!(wal.fsyncs(), 10);
        assert_eq!(wal.appends(), 10);
    }

    #[test]
    fn grouped_wal_amortizes_fsyncs() {
        let mut config = SimConfig::instant();
        config.fsync_micros = 2_000;
        let wal = Arc::new(GroupCommitWal::new(config, true));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let wal = wal.clone();
                std::thread::spawn(move || {
                    for _ in 0..5 {
                        wal.append();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wal.appends(), 80);
        if mantle_types::clock::is_virtual() {
            // Batching exploits *wall-time* overlap between appenders;
            // virtual-clock fsyncs are instant, so the flush window is
            // too narrow to guarantee sharing. The MANTLE_WALL_CLOCK=1
            // smoke run covers the strict amortization assertion.
            assert!(wal.fsyncs() <= 80);
        } else {
            assert!(
                wal.fsyncs() < 80,
                "group commit must batch: {} fsyncs for 80 appends",
                wal.fsyncs()
            );
        }
        assert!(wal.fsyncs() >= 1);
    }

    #[test]
    fn grouped_wal_single_thread_still_durable() {
        let wal = GroupCommitWal::new(SimConfig::instant(), true);
        for _ in 0..5 {
            wal.append();
        }
        // Sequential appends cannot batch; each becomes its own leader.
        assert_eq!(wal.fsyncs(), 5);
    }

    #[test]
    fn append_absorbs_injected_fsync_failures() {
        use mantle_rpc::faults::{FaultPlan, FaultProfile};
        let wal = GroupCommitWal::new_scoped(SimConfig::instant(), false, "waltest_absorb");
        let plan = FaultPlan::new(1, FaultProfile::zeroed());
        plan.force_fsync_failure("waltest_absorb", 3);
        wal.set_faults(Some(plan));
        // Plain append retries through the failures and still acknowledges.
        wal.append();
        wal.append();
        assert_eq!(wal.appends(), 2);
    }

    #[test]
    fn torn_record_is_not_replayed_after_recovery() {
        use mantle_rpc::faults::{FaultPlan, FaultProfile};
        let wal = GroupCommitWal::new_scoped(SimConfig::instant(), false, "waltest_torn");
        let plan = FaultPlan::new(1, FaultProfile::zeroed());
        wal.set_faults(Some(plan.clone()));

        assert_eq!(wal.append_record(100), Ok(0));
        plan.force_fsync_failure("waltest_torn", 1);
        assert!(matches!(
            wal.append_record(200),
            Err(MetaError::Transient { .. })
        ));
        // The next append re-seeks past the torn record: 200 is gone for
        // good, it cannot ride along on 300's fsync.
        assert_eq!(wal.append_record(300), Ok(1));
        assert_eq!(wal.durable_records(), vec![100, 300]);
        assert_eq!(wal.recover(), 0, "no torn tail after a successful append");

        // Crash with a torn record still in the tail.
        plan.force_fsync_failure("waltest_torn", 1);
        assert!(wal.append_record(400).is_err());
        assert_eq!(wal.recover(), 1, "torn tail dropped by recovery");
        assert_eq!(wal.durable_records(), vec![100, 300]);
    }

    #[test]
    fn recovery_truncates_before_latest_durable_checkpoint() {
        use mantle_rpc::faults::{FaultPlan, FaultProfile};
        let wal = GroupCommitWal::new_scoped(SimConfig::instant(), false, "waltest_ckpt");
        let plan = FaultPlan::new(1, FaultProfile::zeroed());
        wal.set_faults(Some(plan.clone()));

        wal.append_record(1).unwrap();
        wal.append_record(2).unwrap();
        wal.append_checkpoint(2).unwrap();
        wal.append_record(3).unwrap();
        assert_eq!(wal.last_checkpoint(), Some(2));
        assert_eq!(wal.durable_records(), vec![1, 2, 3]);

        // Recovery drops everything the checkpoint already captured; the
        // suffix past it survives and so does the checkpoint anchor.
        assert_eq!(wal.recover(), 0);
        assert_eq!(wal.durable_records(), vec![3]);
        assert_eq!(wal.last_checkpoint(), Some(2));

        // A torn checkpoint is no acknowledgment: recovery must not
        // truncate on it.
        wal.append_record(4).unwrap();
        plan.force_fsync_failure("waltest_ckpt", 1);
        assert!(wal.append_checkpoint(4).is_err());
        assert_eq!(wal.recover(), 1);
        assert_eq!(wal.durable_records(), vec![3, 4]);
        assert_eq!(wal.last_checkpoint(), Some(2));
    }
}
