//! Write-ahead log with group commit.
//!
//! Durable commits pay an fsync. Under load, many transactions commit
//! concurrently; group commit lets them share a single flush: the first
//! committer becomes the batch leader, performs one injected fsync for
//! every waiter that joined while the previous flush was in flight, and
//! wakes them. This is the same amortization Mantle applies to the
//! IndexNode's Raft log (§5.2.3, "batched Raft submissions"); TafDB shards
//! use it for transaction durability.

use std::sync::atomic::{AtomicU64, Ordering};

use mantle_obs::{Counter, HistogramMetric};
use parking_lot::{Condvar, Mutex};

use mantle_types::SimConfig;

/// WAL metric handles, labeled by the owning subsystem (`scope="raft"`,
/// `scope="tafdb"`, ...).
struct WalMetrics {
    /// `wal_appends_total{scope=...}` — records appended.
    appends: Counter,
    /// `wal_fsyncs_total{scope=...}` — physical fsyncs performed.
    fsyncs: Counter,
    /// `wal_batch_records{scope=...}` — records made durable per fsync.
    batch: HistogramMetric,
}

impl WalMetrics {
    fn new(scope: &str) -> Self {
        let labels = [("scope", scope)];
        WalMetrics {
            appends: mantle_obs::counter("wal_appends_total", &labels),
            fsyncs: mantle_obs::counter("wal_fsyncs_total", &labels),
            batch: mantle_obs::histogram("wal_batch_records", &labels),
        }
    }
}

#[derive(Default)]
struct State {
    /// Sequence number of the last durable batch.
    flushed: u64,
    /// Sequence number of the last enqueued record.
    enqueued: u64,
    /// Whether a leader is currently flushing.
    flushing: bool,
}

/// A WAL whose appends share injected fsyncs when `group_commit` is on.
pub struct GroupCommitWal {
    state: Mutex<State>,
    cv: Condvar,
    config: SimConfig,
    group_commit: bool,
    fsyncs: AtomicU64,
    appends: AtomicU64,
    metrics: WalMetrics,
}

impl GroupCommitWal {
    /// Creates a WAL. With `group_commit = false` every append pays its own
    /// fsync (the un-batched baseline of Figure 16).
    pub fn new(config: SimConfig, group_commit: bool) -> Self {
        Self::new_scoped(config, group_commit, "wal")
    }

    /// [`GroupCommitWal::new`] with a metric label naming the owning
    /// subsystem (`wal_appends_total{scope="raft"}` vs `scope="tafdb"`).
    pub fn new_scoped(config: SimConfig, group_commit: bool, scope: &str) -> Self {
        GroupCommitWal {
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            config,
            group_commit,
            fsyncs: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            metrics: WalMetrics::new(scope),
        }
    }

    /// Appends one record and returns once it is durable.
    pub fn append(&self) {
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.metrics.appends.inc();
        if !self.group_commit {
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
            self.metrics.fsyncs.inc();
            self.metrics.batch.record(1);
            mantle_rpc_fsync(&self.config);
            return;
        }

        let mut state = self.state.lock();
        state.enqueued += 1;
        let my_seq = state.enqueued;
        loop {
            if state.flushed >= my_seq {
                return;
            }
            if !state.flushing {
                // Become the batch leader: flush everything enqueued so far.
                state.flushing = true;
                let flush_to = state.enqueued;
                let batch = flush_to - state.flushed;
                drop(state);

                self.fsyncs.fetch_add(1, Ordering::Relaxed);
                self.metrics.fsyncs.inc();
                self.metrics.batch.record(batch);
                mantle_rpc_fsync(&self.config);

                state = self.state.lock();
                state.flushed = state.flushed.max(flush_to);
                state.flushing = false;
                self.cv.notify_all();
                if state.flushed >= my_seq {
                    return;
                }
            } else {
                self.cv.wait(&mut state);
            }
        }
    }

    /// Number of physical fsyncs performed.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Number of records appended.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }
}

/// Injects the fsync delay (thin wrapper so this module has no direct
/// dependency on `mantle-rpc`, avoiding a cycle).
fn mantle_rpc_fsync(config: &SimConfig) {
    let d = config.fsync();
    if !d.is_zero() {
        std::thread::sleep(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ungrouped_wal_fsyncs_every_append() {
        let wal = GroupCommitWal::new(SimConfig::instant(), false);
        for _ in 0..10 {
            wal.append();
        }
        assert_eq!(wal.fsyncs(), 10);
        assert_eq!(wal.appends(), 10);
    }

    #[test]
    fn grouped_wal_amortizes_fsyncs() {
        let mut config = SimConfig::instant();
        config.fsync_micros = 2_000;
        let wal = Arc::new(GroupCommitWal::new(config, true));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let wal = wal.clone();
                std::thread::spawn(move || {
                    for _ in 0..5 {
                        wal.append();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wal.appends(), 80);
        assert!(
            wal.fsyncs() < 80,
            "group commit must batch: {} fsyncs for 80 appends",
            wal.fsyncs()
        );
        assert!(wal.fsyncs() >= 1);
    }

    #[test]
    fn grouped_wal_single_thread_still_durable() {
        let wal = GroupCommitWal::new(SimConfig::instant(), true);
        for _ in 0..5 {
            wal.append();
        }
        // Sequential appends cannot batch; each becomes its own leader.
        assert_eq!(wal.fsyncs(), 5);
    }
}
