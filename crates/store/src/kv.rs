//! The ordered row store.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

use parking_lot::RwLock;

use mantle_types::{InodeId, TxnId};

/// Composite primary key of a metadata row: `(pid, name, ts)`.
///
/// `ts` is [`TxnId::BASE`] (zero) for ordinary rows; delta records carry
/// their transaction timestamp (§5.2.1, Figure 8). Ordering is
/// lexicographic over the tuple, so all rows of one directory are adjacent
/// (directory locality, §2.3) and all delta records of one attribute row
/// are adjacent after it.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RowKey {
    /// Parent directory id.
    pub pid: InodeId,
    /// Entry name (or the reserved `/_ATTR` for attribute/delta rows).
    pub name: Arc<str>,
    /// Transaction timestamp; zero for base rows.
    pub ts: TxnId,
}

impl RowKey {
    /// A base (non-delta) row key.
    pub fn base(pid: InodeId, name: &str) -> Self {
        RowKey {
            pid,
            name: Arc::from(name),
            ts: TxnId::BASE,
        }
    }

    /// A delta-record key.
    pub fn delta(pid: InodeId, name: &str, ts: TxnId) -> Self {
        RowKey {
            pid,
            name: Arc::from(name),
            ts,
        }
    }
}

/// An in-memory ordered row store, generic over the row value.
///
/// Thread safety: a reader-writer lock around a B-tree. Critical sections
/// are short (clone in, clone out); transaction-level isolation is provided
/// above this layer by [`crate::LockManager`], not by holding the map lock.
pub struct KvStore<V: Clone> {
    map: RwLock<BTreeMap<RowKey, V>>,
}

impl<V: Clone> Default for KvStore<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone> KvStore<V> {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore {
            map: RwLock::new(BTreeMap::new()),
        }
    }

    /// Reads one row.
    pub fn get(&self, key: &RowKey) -> Option<V> {
        self.map.read().get(key).cloned()
    }

    /// Whether a row exists.
    pub fn contains(&self, key: &RowKey) -> bool {
        self.map.read().contains_key(key)
    }

    /// Inserts or replaces a row, returning the previous value.
    pub fn put(&self, key: RowKey, value: V) -> Option<V> {
        self.map.write().insert(key, value)
    }

    /// Inserts a row only if absent; returns `false` (without writing) when
    /// the key already exists.
    pub fn put_if_absent(&self, key: RowKey, value: V) -> bool {
        let mut map = self.map.write();
        if map.contains_key(&key) {
            return false;
        }
        map.insert(key, value);
        true
    }

    /// Removes a row, returning its value.
    pub fn delete(&self, key: &RowKey) -> Option<V> {
        self.map.write().remove(key)
    }

    /// Read-modify-write of one row under the map's write lock. `f`
    /// receives the current value and returns the new one (`None` deletes).
    /// Returns whether the row existed.
    pub fn update<R>(&self, key: &RowKey, f: impl FnOnce(Option<&V>) -> (Option<V>, R)) -> R {
        let mut map = self.map.write();
        let current = map.get(key);
        let (next, out) = f(current);
        match next {
            Some(v) => {
                map.insert(key.clone(), v);
            }
            None => {
                map.remove(key);
            }
        }
        out
    }

    /// All rows of directory `pid` with names in `[name_from, ..)`, capped
    /// at `limit`. Passing `""` scans the whole directory.
    pub fn scan_dir(&self, pid: InodeId, name_from: &str, limit: usize) -> Vec<(RowKey, V)> {
        let from = RowKey {
            pid,
            name: Arc::from(name_from),
            ts: TxnId::BASE,
        };
        let to = RowKey {
            pid: InodeId(pid.0 + 1),
            name: Arc::from(""),
            ts: TxnId::BASE,
        };
        self.map
            .read()
            .range((Bound::Included(from), Bound::Excluded(to)))
            .take(limit)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// All rows `(pid, name, *)` — the base row and every delta record of
    /// one logical entry, in timestamp order.
    pub fn scan_versions(&self, pid: InodeId, name: &str) -> Vec<(RowKey, V)> {
        let from = RowKey::base(pid, name);
        let map = self.map.read();
        map.range((Bound::Included(from), Bound::Unbounded))
            .take_while(|(k, _)| k.pid == pid && k.name.as_ref() == name)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Applies puts and deletes in one critical section. Delta-record
    /// compaction uses this so a concurrent `dirstat` scan never sees the
    /// merged base row *and* the already-folded delta records together.
    pub fn apply_batch(&self, puts: Vec<(RowKey, V)>, deletes: &[RowKey]) {
        let mut map = self.map.write();
        for (k, v) in puts {
            map.insert(k, v);
        }
        for k in deletes {
            map.remove(k);
        }
    }

    /// Deletes a set of keys in one critical section (compaction uses this
    /// to retire delta records atomically with the base-row update).
    pub fn delete_batch(&self, keys: &[RowKey]) -> usize {
        let mut map = self.map.write();
        keys.iter().filter(|k| map.remove(k).is_some()).count()
    }

    /// Runs `f` with shared (read) access to the underlying map — used by
    /// shard migration to collect the rows of a key range in one consistent
    /// snapshot without cloning the whole store.
    pub fn with_read<R>(&self, f: impl FnOnce(&BTreeMap<RowKey, V>) -> R) -> R {
        f(&self.map.read())
    }

    /// Runs `f` with exclusive access to the underlying map — the escape
    /// hatch for multi-key atomic maintenance (delta-record folding, rmdir's
    /// attr-and-delta cleanup) that must be invisible to concurrent scans.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut BTreeMap<RowKey, V>) -> R) -> R {
        f(&mut self.map.write())
    }

    /// Every row in key order — one consistent snapshot of the whole store,
    /// used by shard checkpointing (DESIGN.md §4.11).
    pub fn export_rows(&self) -> Vec<(RowKey, V)> {
        self.map
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Replaces the entire store contents (checkpoint restore).
    pub fn replace_all(&self, rows: Vec<(RowKey, V)>) {
        let mut map = self.map.write();
        map.clear();
        map.extend(rows);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(pid: u64, name: &str) -> RowKey {
        RowKey::base(InodeId(pid), name)
    }

    #[test]
    fn put_get_delete_round_trip() {
        let s: KvStore<u32> = KvStore::new();
        assert!(s.put(key(1, "a"), 10).is_none());
        assert_eq!(s.put(key(1, "a"), 11), Some(10));
        assert_eq!(s.get(&key(1, "a")), Some(11));
        assert_eq!(s.delete(&key(1, "a")), Some(11));
        assert!(s.get(&key(1, "a")).is_none());
    }

    #[test]
    fn put_if_absent_is_atomic_check() {
        let s: KvStore<u32> = KvStore::new();
        assert!(s.put_if_absent(key(1, "a"), 1));
        assert!(!s.put_if_absent(key(1, "a"), 2));
        assert_eq!(s.get(&key(1, "a")), Some(1));
    }

    #[test]
    fn scan_dir_is_bounded_by_pid() {
        let s: KvStore<u32> = KvStore::new();
        s.put(key(1, "a"), 1);
        s.put(key(1, "b"), 2);
        s.put(key(2, "a"), 3);
        let rows = s.scan_dir(InodeId(1), "", 10);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1, 1);
        assert_eq!(rows[1].1, 2);
        // Resume from a name.
        let rows = s.scan_dir(InodeId(1), "b", 10);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1, 2);
        // Limit applies.
        assert_eq!(s.scan_dir(InodeId(1), "", 1).len(), 1);
    }

    #[test]
    fn scan_versions_returns_base_and_deltas_in_order() {
        let s: KvStore<u32> = KvStore::new();
        s.put(RowKey::delta(InodeId(5), "/_ATTR", TxnId(30)), 300);
        s.put(RowKey::base(InodeId(5), "/_ATTR"), 0);
        s.put(RowKey::delta(InodeId(5), "/_ATTR", TxnId(10)), 100);
        s.put(RowKey::base(InodeId(5), "other"), 9);
        let rows = s.scan_versions(InodeId(5), "/_ATTR");
        let ts: Vec<u64> = rows.iter().map(|(k, _)| k.ts.0).collect();
        assert_eq!(ts, vec![0, 10, 30]);
    }

    #[test]
    fn update_inserts_and_deletes() {
        let s: KvStore<u32> = KvStore::new();
        let existed = s.update(&key(1, "a"), |cur| {
            assert!(cur.is_none());
            (Some(5), false)
        });
        assert!(!existed);
        let doubled = s.update(&key(1, "a"), |cur| {
            let v = cur.copied().unwrap() * 2;
            (Some(v), true)
        });
        assert!(doubled);
        assert_eq!(s.get(&key(1, "a")), Some(10));
        s.update(&key(1, "a"), |_| (None, ()));
        assert!(s.is_empty());
    }

    #[test]
    fn delete_batch_counts_removed() {
        let s: KvStore<u32> = KvStore::new();
        s.put(key(1, "a"), 1);
        s.put(key(1, "b"), 2);
        let n = s.delete_batch(&[key(1, "a"), key(1, "zz")]);
        assert_eq!(n, 1);
        assert_eq!(s.len(), 1);
    }
}
