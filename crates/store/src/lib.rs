//! Single-node ordered storage engine.
//!
//! Each TafDB shard (and each baseline's metadata table) sits on one
//! [`KvStore`]: an ordered map over composite [`RowKey`]s
//! `(pid, name, ts)`. The key layout is exactly Figure 2's/Figure 8's
//! schema: metadata tables are primary-keyed by parent directory id and
//! entry name, and delta records extend the key with the transaction
//! timestamp `ts` (the base attribute row has `ts = 0`).
//!
//! The engine deliberately separates three concerns:
//!
//! * [`KvStore`] — the ordered data itself (get/put/delete/range scans);
//! * [`LockManager`] — transaction row locks with *no-wait* conflict
//!   handling: a conflicting lock acquisition fails immediately and the
//!   transaction aborts and retries, which is the abort/retry behaviour the
//!   paper measures under contention (§3.2, Figure 4b);
//! * [`GroupCommitWal`] — commit durability; concurrent committers share
//!   one injected fsync, and the batching can be disabled to reproduce the
//!   un-amortized baseline.

pub mod kv;
pub mod locks;
pub mod wal;

pub use kv::{KvStore, RowKey};
pub use locks::{LockManager, LockMode};
pub use wal::GroupCommitWal;
