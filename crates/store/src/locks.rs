//! Transaction row locks with no-wait conflict handling.
//!
//! The DBtable-based service's collapse under contention (§3.2) comes from
//! distributed transactions aborting and retrying when they collide on the
//! parent directory's attribute row. This lock manager reproduces that
//! behaviour: acquisitions are *no-wait* — a conflict fails immediately with
//! the owning transaction id, and the caller aborts, releases, backs off
//! and retries. Shared (read) locks are compatible with each other;
//! exclusive locks conflict with everything.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::kv::RowKey;
use mantle_types::TxnId;

/// Lock mode for a row.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockMode {
    /// Shared: compatible with other shared holders.
    Shared,
    /// Exclusive: conflicts with every other holder.
    Exclusive,
}

#[derive(Debug)]
enum Entry {
    Shared(Vec<TxnId>),
    Exclusive(TxnId),
}

/// A striped table of row locks.
pub struct LockManager {
    stripes: Vec<Mutex<HashMap<RowKey, Entry>>>,
    mask: usize,
}

impl LockManager {
    /// Creates a manager with `stripes` internal partitions (rounded up to a
    /// power of two).
    pub fn new(stripes: usize) -> Self {
        let n = stripes.next_power_of_two().max(1);
        LockManager {
            stripes: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: n - 1,
        }
    }

    fn stripe(&self, key: &RowKey) -> &Mutex<HashMap<RowKey, Entry>> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.stripes[(h.finish() as usize) & self.mask]
    }

    /// Attempts to lock `key` for `txn` in `mode`.
    ///
    /// Re-entrant: a transaction already holding the row in a compatible or
    /// stronger mode succeeds (shared→exclusive upgrade succeeds only when
    /// the transaction is the sole shared holder).
    ///
    /// # Errors
    ///
    /// Returns the conflicting owner on failure; the caller is expected to
    /// abort and retry (no-wait).
    pub fn try_lock(&self, key: &RowKey, txn: TxnId, mode: LockMode) -> Result<(), TxnId> {
        let mut map = self.stripe(key).lock();
        match map.get_mut(key) {
            None => {
                let entry = match mode {
                    LockMode::Shared => Entry::Shared(vec![txn]),
                    LockMode::Exclusive => Entry::Exclusive(txn),
                };
                map.insert(key.clone(), entry);
                Ok(())
            }
            Some(Entry::Exclusive(owner)) => {
                if *owner == txn {
                    Ok(())
                } else {
                    Err(*owner)
                }
            }
            Some(Entry::Shared(holders)) => match mode {
                LockMode::Shared => {
                    if !holders.contains(&txn) {
                        holders.push(txn);
                    }
                    Ok(())
                }
                LockMode::Exclusive => {
                    if holders.len() == 1 && holders[0] == txn {
                        *map.get_mut(key).expect("entry exists") = Entry::Exclusive(txn);
                        Ok(())
                    } else {
                        Err(*holders.iter().find(|h| **h != txn).expect("conflict"))
                    }
                }
            },
        }
    }

    /// Releases `txn`'s hold on `key` (all modes). Unknown keys are ignored
    /// (release is idempotent, simplifying abort paths).
    pub fn unlock(&self, key: &RowKey, txn: TxnId) {
        let mut map = self.stripe(key).lock();
        match map.get_mut(key) {
            Some(Entry::Exclusive(owner)) if *owner == txn => {
                map.remove(key);
            }
            Some(Entry::Shared(holders)) => {
                holders.retain(|h| *h != txn);
                if holders.is_empty() {
                    map.remove(key);
                }
            }
            _ => {}
        }
    }

    /// Releases a whole lock set (commit/abort epilogue).
    pub fn unlock_all(&self, keys: &[RowKey], txn: TxnId) {
        for key in keys {
            self.unlock(key, txn);
        }
    }

    /// Whether any transaction holds `key` (test/diagnostic helper).
    pub fn is_locked(&self, key: &RowKey) -> bool {
        self.stripe(key).lock().contains_key(key)
    }

    /// Whether any currently held lock's key satisfies `pred`. Scans every
    /// stripe (one at a time, so concurrent acquisitions are not blocked
    /// globally); shard migration uses this to wait for in-flight
    /// transactions on the moving range to drain before copying rows.
    pub fn any_held(&self, pred: impl Fn(&RowKey) -> bool) -> bool {
        self.stripes.iter().any(|s| s.lock().keys().any(&pred))
    }
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager::new(256)
    }
}

/// RAII helper tracking a transaction's acquired locks; releases them all on
/// drop unless defused with [`LockSet::release_now`].
pub struct LockSet {
    manager: Arc<LockManager>,
    txn: TxnId,
    held: Vec<RowKey>,
}

impl LockSet {
    /// Starts an empty lock set for `txn`.
    pub fn new(manager: Arc<LockManager>, txn: TxnId) -> Self {
        LockSet {
            manager,
            txn,
            held: Vec::new(),
        }
    }

    /// Acquires one more row lock, remembering it for release.
    ///
    /// # Errors
    ///
    /// Propagates the conflicting owner from [`LockManager::try_lock`].
    pub fn lock(&mut self, key: RowKey, mode: LockMode) -> Result<(), TxnId> {
        self.manager.try_lock(&key, self.txn, mode)?;
        if !self.held.contains(&key) {
            self.held.push(key);
        }
        Ok(())
    }

    /// The owning transaction.
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// Number of distinct rows held.
    pub fn len(&self) -> usize {
        self.held.len()
    }

    /// Whether no locks are held.
    pub fn is_empty(&self) -> bool {
        self.held.is_empty()
    }

    /// Releases everything immediately.
    pub fn release_now(mut self) {
        self.release_inner();
    }

    fn release_inner(&mut self) {
        let held = std::mem::take(&mut self.held);
        self.manager.unlock_all(&held, self.txn);
    }
}

impl Drop for LockSet {
    fn drop(&mut self) {
        self.release_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantle_types::InodeId;

    fn key(pid: u64, name: &str) -> RowKey {
        RowKey::base(InodeId(pid), name)
    }

    #[test]
    fn exclusive_conflicts_reported_no_wait() {
        let lm = LockManager::new(4);
        assert!(lm
            .try_lock(&key(1, "a"), TxnId(1), LockMode::Exclusive)
            .is_ok());
        assert_eq!(
            lm.try_lock(&key(1, "a"), TxnId(2), LockMode::Exclusive),
            Err(TxnId(1))
        );
        lm.unlock(&key(1, "a"), TxnId(1));
        assert!(lm
            .try_lock(&key(1, "a"), TxnId(2), LockMode::Exclusive)
            .is_ok());
    }

    #[test]
    fn shared_locks_are_compatible() {
        let lm = LockManager::new(4);
        assert!(lm
            .try_lock(&key(1, "a"), TxnId(1), LockMode::Shared)
            .is_ok());
        assert!(lm
            .try_lock(&key(1, "a"), TxnId(2), LockMode::Shared)
            .is_ok());
        assert_eq!(
            lm.try_lock(&key(1, "a"), TxnId(3), LockMode::Exclusive),
            Err(TxnId(1))
        );
        lm.unlock(&key(1, "a"), TxnId(1));
        lm.unlock(&key(1, "a"), TxnId(2));
        assert!(!lm.is_locked(&key(1, "a")));
    }

    #[test]
    fn reentrant_and_upgrade() {
        let lm = LockManager::new(4);
        assert!(lm
            .try_lock(&key(1, "a"), TxnId(1), LockMode::Exclusive)
            .is_ok());
        assert!(lm
            .try_lock(&key(1, "a"), TxnId(1), LockMode::Exclusive)
            .is_ok());
        assert!(lm
            .try_lock(&key(1, "a"), TxnId(1), LockMode::Shared)
            .is_ok());
        // Sole shared holder upgrades.
        assert!(lm
            .try_lock(&key(2, "b"), TxnId(5), LockMode::Shared)
            .is_ok());
        assert!(lm
            .try_lock(&key(2, "b"), TxnId(5), LockMode::Exclusive)
            .is_ok());
        assert_eq!(
            lm.try_lock(&key(2, "b"), TxnId(6), LockMode::Shared),
            Err(TxnId(5))
        );
        // Upgrade with another shared holder fails.
        assert!(lm
            .try_lock(&key(3, "c"), TxnId(7), LockMode::Shared)
            .is_ok());
        assert!(lm
            .try_lock(&key(3, "c"), TxnId(8), LockMode::Shared)
            .is_ok());
        assert!(lm
            .try_lock(&key(3, "c"), TxnId(7), LockMode::Exclusive)
            .is_err());
    }

    #[test]
    fn any_held_sees_live_locks_only() {
        let lm = LockManager::new(4);
        assert!(!lm.any_held(|_| true));
        lm.try_lock(&key(9, "x"), TxnId(1), LockMode::Shared)
            .unwrap();
        assert!(lm.any_held(|k| k.pid == InodeId(9)));
        assert!(!lm.any_held(|k| k.pid == InodeId(8)));
        lm.unlock(&key(9, "x"), TxnId(1));
        assert!(!lm.any_held(|_| true));
    }

    #[test]
    fn lock_set_releases_on_drop() {
        let lm = Arc::new(LockManager::new(4));
        {
            let mut set = LockSet::new(lm.clone(), TxnId(9));
            set.lock(key(1, "a"), LockMode::Exclusive).unwrap();
            set.lock(key(1, "b"), LockMode::Shared).unwrap();
            assert_eq!(set.len(), 2);
            assert!(lm.is_locked(&key(1, "a")));
        }
        assert!(!lm.is_locked(&key(1, "a")));
        assert!(!lm.is_locked(&key(1, "b")));
    }

    #[test]
    fn concurrent_contention_exactly_one_winner() {
        let lm = Arc::new(LockManager::new(16));
        let winners = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let (lm, winners) = (lm.clone(), winners.clone());
                std::thread::spawn(move || {
                    if lm
                        .try_lock(&key(7, "hot"), TxnId(i as u64 + 1), LockMode::Exclusive)
                        .is_ok()
                    {
                        winners.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(winners.load(std::sync::atomic::Ordering::SeqCst), 1);
    }
}
