//! The Tectonic-style DBtable baseline (§2.3, Figure 2).
//!
//! Path resolution traverses the hierarchy level by level, one RPC to the
//! owning shard per component ("multi-RPC path resolution"). Directory
//! modifications follow §6.1's re-implementation note: consistency is
//! relaxed — no distributed transactions; each row is written
//! independently, and the parent directory's attribute row is updated
//! under a blocking per-row latch (which is what serializes `mkdir-s`).

use std::sync::Arc;

use mantle_tafdb::{attr_key, entry_key, Row, TafDb, TafDbOptions};
use mantle_types::{
    id::IdAllocator, AttrDelta, BulkLoad, DirAttrMeta, DirEntry, DirStat, InodeId, MetaError,
    MetaPath, MetadataService, ObjectMeta, Permission, Phase, RequestCtx, ResolvedPath, Result,
    SimConfig, ROOT_ID,
};

/// Tectonic deployment options.
#[derive(Clone, Copy, Debug)]
pub struct TectonicOptions {
    /// Metadata shards. Table 2 gives Tectonic 21 metadata servers where
    /// the two-layer systems get 18 + 3; the scaled default keeps the
    /// ratio (10 vs 8).
    pub db_shards: usize,
    /// Use full distributed transactions for directory modifications.
    ///
    /// `false` (default) is the paper's §6.1 re-implementation: "we relax
    /// the consistency and avoid using distributed transactions". `true`
    /// models Baidu's original DBtable service, whose 2PC aborts under
    /// contention produce the Figure 4b collapse.
    pub transactional: bool,
}

impl Default for TectonicOptions {
    fn default() -> Self {
        TectonicOptions {
            db_shards: 10,
            transactional: false,
        }
    }
}

/// The DBtable-based metadata service.
pub struct Tectonic {
    db: Arc<TafDb>,
    transactional: bool,
    ids: IdAllocator,
    clock: std::sync::atomic::AtomicU64,
}

impl Tectonic {
    /// Builds a Tectonic-style service over a fresh sharded table.
    pub fn new(sim: SimConfig, opts: TectonicOptions) -> Arc<Self> {
        let db_opts = TafDbOptions {
            n_shards: opts.db_shards,
            // No delta records: contended attribute updates serialize on
            // the row latch instead (§6.3).
            delta_records: false,
            ..TafDbOptions::default()
        };
        Arc::new(Tectonic {
            db: TafDb::new(sim, db_opts),
            transactional: opts.transactional,
            ids: IdAllocator::new(),
            clock: std::sync::atomic::AtomicU64::new(1),
        })
    }

    /// The underlying sharded table (inspection).
    pub fn db(&self) -> &Arc<TafDb> {
        &self.db
    }

    /// Installs (or clears) a fault plan on the underlying shards, so the
    /// chaos harness exercises baselines under the same fault profile.
    pub fn install_faults(&self, plan: Option<Arc<mantle_rpc::FaultPlan>>) {
        self.db.install_faults(plan);
    }

    fn now(&self) -> u64 {
        self.clock
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Level-by-level traversal: one RPC per component (the dotted arrows
    /// of Figure 2), with a permission check at each step.
    fn resolve_dir(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<ResolvedPath> {
        let mut pid = ROOT_ID;
        let mut permission = Permission::ALL;
        for comp in path.components() {
            if !permission.allows_traverse() {
                return Err(MetaError::PermissionDenied(path.to_string()));
            }
            let (id, perm) = self.db.resolve_step(pid, comp, stats)?;
            pid = id;
            permission = permission.intersect(perm);
        }
        Ok(ResolvedPath {
            id: pid,
            permission,
        })
    }

    fn resolve_parent(
        &self,
        path: &MetaPath,
        stats: &mut RequestCtx,
    ) -> Result<(ResolvedPath, String)> {
        let parent = path
            .parent()
            .ok_or_else(|| MetaError::InvalidPath("operation on root".into()))?;
        let name = path.name().expect("non-root").to_string();
        Ok((self.resolve_dir(&parent, stats)?, name))
    }
}

impl MetadataService for Tectonic {
    fn name(&self) -> &'static str {
        "tectonic"
    }

    fn lookup(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<ResolvedPath> {
        stats.time(Phase::Lookup, |stats| self.resolve_dir(path, stats))
    }

    fn mkdir(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<InodeId> {
        let (parent, name) = stats.time(Phase::Lookup, |stats| self.resolve_parent(path, stats))?;
        stats.time(Phase::Execute, |stats| {
            if !parent.permission.allows(Permission::WRITE) {
                return Err(MetaError::PermissionDenied(path.to_string()));
            }
            let id = self.ids.alloc();
            let now = self.now();
            if self.transactional {
                // The original DBtable service: one distributed transaction
                // spanning the parent's shard and the new directory's shard
                // (Figure 2 steps 4a/4b), aborting on conflicts.
                let ops = [
                    mantle_tafdb::TxnOp::InsertUnique {
                        key: entry_key(parent.id, &name),
                        row: Row::DirAccess {
                            id,
                            permission: Permission::ALL,
                        },
                    },
                    mantle_tafdb::TxnOp::Put {
                        key: attr_key(id),
                        row: Row::DirAttr(DirAttrMeta::new(now, 0)),
                    },
                    mantle_tafdb::TxnOp::AttrUpdate {
                        dir: parent.id,
                        delta: AttrDelta {
                            nlink: 1,
                            entries: 1,
                            mtime: now,
                        },
                    },
                ];
                self.db.execute(&ops, stats)?;
                return Ok(id);
            }
            // Relaxed consistency: three independent writes, no transaction.
            self.db.insert_row(
                entry_key(parent.id, &name),
                Row::DirAccess {
                    id,
                    permission: Permission::ALL,
                },
                stats,
            )?;
            self.db
                .insert_row(attr_key(id), Row::DirAttr(DirAttrMeta::new(now, 0)), stats)?;
            self.db.update_attr_latched(
                parent.id,
                AttrDelta {
                    nlink: 1,
                    entries: 1,
                    mtime: now,
                },
                stats,
            )?;
            Ok(id)
        })
    }

    fn rmdir(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<()> {
        let (dir, parent, name) = stats.time(Phase::Lookup, |stats| {
            let (parent, name) = self.resolve_parent(path, stats)?;
            let (id, _) = self.db.resolve_step(parent.id, &name, stats)?;
            Ok::<_, MetaError>((id, parent, name))
        })?;
        stats.time(Phase::Execute, |stats| {
            let children = self.db.readdir(dir, stats);
            if !children.is_empty() {
                return Err(MetaError::NotEmpty(path.to_string()));
            }
            let now = self.now();
            self.db.delete_row(entry_key(parent.id, &name), stats)?;
            self.db.delete_row(attr_key(dir), stats)?;
            self.db.update_attr_latched(
                parent.id,
                AttrDelta {
                    nlink: -1,
                    entries: -1,
                    mtime: now,
                },
                stats,
            )?;
            Ok(())
        })
    }

    fn create(&self, path: &MetaPath, size: u64, stats: &mut RequestCtx) -> Result<InodeId> {
        let (parent, name) = stats.time(Phase::Lookup, |stats| self.resolve_parent(path, stats))?;
        stats.time(Phase::Execute, |stats| {
            if !parent.permission.allows(Permission::WRITE) {
                return Err(MetaError::PermissionDenied(path.to_string()));
            }
            let id = self.ids.alloc();
            let now = self.now();
            self.db.insert_row(
                entry_key(parent.id, &name),
                Row::Object(ObjectMeta {
                    pid: parent.id,
                    name: name.clone(),
                    id,
                    size,
                    blob: 0,
                    ctime: now,
                    permission: Permission::ALL,
                }),
                stats,
            )?;
            self.db.update_attr_latched(
                parent.id,
                AttrDelta {
                    nlink: 0,
                    entries: 1,
                    mtime: now,
                },
                stats,
            )?;
            Ok(id)
        })
    }

    fn delete(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<()> {
        let (parent, name) = stats.time(Phase::Lookup, |stats| self.resolve_parent(path, stats))?;
        stats.time(Phase::Execute, |stats| {
            self.db.get_object(parent.id, &name, stats)?;
            let now = self.now();
            self.db.delete_row(entry_key(parent.id, &name), stats)?;
            self.db.update_attr_latched(
                parent.id,
                AttrDelta {
                    nlink: 0,
                    entries: -1,
                    mtime: now,
                },
                stats,
            )?;
            Ok(())
        })
    }

    fn objstat(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<ObjectMeta> {
        let (parent, name) = stats.time(Phase::Lookup, |stats| self.resolve_parent(path, stats))?;
        stats.time(Phase::Execute, |stats| {
            self.db.get_object(parent.id, &name, stats)
        })
    }

    fn dirstat(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<DirStat> {
        let dir = stats.time(Phase::Lookup, |stats| self.resolve_dir(path, stats))?;
        stats.time(Phase::Execute, |stats| {
            let attrs = self.db.dir_stat(dir.id, stats)?;
            Ok(DirStat {
                id: dir.id,
                attrs,
                permission: dir.permission,
            })
        })
    }

    fn readdir(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<Vec<DirEntry>> {
        let dir = stats.time(Phase::Lookup, |stats| self.resolve_dir(path, stats))?;
        stats.time(Phase::Execute, |stats| Ok(self.db.readdir(dir.id, stats)))
    }

    fn list(
        &self,
        path: &MetaPath,
        start_after: Option<&str>,
        limit: usize,
        stats: &mut RequestCtx,
    ) -> Result<(Vec<DirEntry>, bool)> {
        // Tectonic's shard store is ordered, so a page is a bounded engine
        // range scan — not the default full-readdir-then-slice fallback.
        let dir = stats.time(Phase::Lookup, |stats| self.resolve_dir(path, stats))?;
        stats.time(Phase::Execute, |stats| {
            Ok(self.db.readdir_page(dir.id, start_after, limit, stats))
        })
    }

    fn rename_dir(&self, src: &MetaPath, dst: &MetaPath, stats: &mut RequestCtx) -> Result<()> {
        if src.is_root() || dst.is_root() {
            return Err(MetaError::InvalidRename("root cannot be renamed".into()));
        }
        // Proxy-side loop detection on the (unlocked) paths — the relaxed
        // consistency of the re-implementation.
        if src.is_prefix_of(dst) {
            return Err(MetaError::RenameLoop {
                src: src.to_string(),
                dst: dst.to_string(),
            });
        }
        let (src_parent, src_name, dst_parent, dst_name) = stats.time(Phase::Lookup, |stats| {
            let (sp, sn) = self.resolve_parent(src, stats)?;
            let (dp, dn) = self.resolve_parent(dst, stats)?;
            Ok::<_, MetaError>((sp, sn, dp, dn))
        })?;
        stats.time(Phase::Execute, |stats| {
            let (src_id, src_perm) = self.db.resolve_step(src_parent.id, &src_name, stats)?;
            let now = self.now();
            if self.transactional {
                let mut ops = vec![
                    mantle_tafdb::TxnOp::Delete {
                        key: entry_key(src_parent.id, &src_name),
                    },
                    mantle_tafdb::TxnOp::InsertUnique {
                        key: entry_key(dst_parent.id, &dst_name),
                        row: Row::DirAccess {
                            id: src_id,
                            permission: src_perm,
                        },
                    },
                ];
                if src_parent.id == dst_parent.id {
                    ops.push(mantle_tafdb::TxnOp::AttrUpdate {
                        dir: src_parent.id,
                        delta: AttrDelta {
                            nlink: 0,
                            entries: 0,
                            mtime: now,
                        },
                    });
                } else {
                    ops.push(mantle_tafdb::TxnOp::AttrUpdate {
                        dir: src_parent.id,
                        delta: AttrDelta {
                            nlink: -1,
                            entries: -1,
                            mtime: now,
                        },
                    });
                    ops.push(mantle_tafdb::TxnOp::AttrUpdate {
                        dir: dst_parent.id,
                        delta: AttrDelta {
                            nlink: 1,
                            entries: 1,
                            mtime: now,
                        },
                    });
                }
                if let Err(e) = self.db.execute(&ops, stats) {
                    mantle_obs::flight::annotate_with(|| format!("tectonic:rename_txn err={e}"));
                    return Err(e);
                }
                return Ok(());
            }
            self.db.insert_row(
                entry_key(dst_parent.id, &dst_name),
                Row::DirAccess {
                    id: src_id,
                    permission: src_perm,
                },
                stats,
            )?;
            self.db
                .delete_row(entry_key(src_parent.id, &src_name), stats)?;
            if src_parent.id == dst_parent.id {
                self.db.update_attr_latched(
                    src_parent.id,
                    AttrDelta {
                        nlink: 0,
                        entries: 0,
                        mtime: now,
                    },
                    stats,
                )?;
            } else {
                self.db.update_attr_latched(
                    src_parent.id,
                    AttrDelta {
                        nlink: -1,
                        entries: -1,
                        mtime: now,
                    },
                    stats,
                )?;
                self.db.update_attr_latched(
                    dst_parent.id,
                    AttrDelta {
                        nlink: 1,
                        entries: 1,
                        mtime: now,
                    },
                    stats,
                )?;
            }
            Ok(())
        })
    }
}

impl BulkLoad for Tectonic {
    fn bulk_dir(&self, path: &MetaPath) -> InodeId {
        let mut pid = ROOT_ID;
        for comp in path.components() {
            match self.db.raw_get(&entry_key(pid, comp)) {
                Some(Row::DirAccess { id, .. }) => pid = id,
                Some(_) => panic!("bulk_dir crosses an object in {path}"),
                None => {
                    let id = self.ids.alloc();
                    let now = self.now();
                    self.db.raw_put(
                        entry_key(pid, comp),
                        Row::DirAccess {
                            id,
                            permission: Permission::ALL,
                        },
                    );
                    self.db
                        .raw_put(attr_key(id), Row::DirAttr(DirAttrMeta::new(now, 0)));
                    if let Some(Row::DirAttr(mut attrs)) = self.db.raw_get(&attr_key(pid)) {
                        attrs.apply_delta(&AttrDelta {
                            nlink: 1,
                            entries: 1,
                            mtime: now,
                        });
                        self.db.raw_put(attr_key(pid), Row::DirAttr(attrs));
                    }
                    pid = id;
                }
            }
        }
        pid
    }

    fn bulk_object(&self, path: &MetaPath, size: u64) {
        let parent = path.parent().expect("objects cannot be the root");
        let name = path.name().expect("non-root");
        let pid = self.bulk_dir(&parent);
        let id = self.ids.alloc();
        let now = self.now();
        self.db.raw_put(
            entry_key(pid, name),
            Row::Object(ObjectMeta {
                pid,
                name: name.to_string(),
                id,
                size,
                blob: 0,
                ctime: now,
                permission: Permission::ALL,
            }),
        );
        if let Some(Row::DirAttr(mut attrs)) = self.db.raw_get(&attr_key(pid)) {
            attrs.apply_delta(&AttrDelta {
                nlink: 0,
                entries: 1,
                mtime: now,
            });
            self.db.raw_put(attr_key(pid), Row::DirAttr(attrs));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> MetaPath {
        MetaPath::parse(s).unwrap()
    }

    fn svc() -> Arc<Tectonic> {
        Tectonic::new(SimConfig::instant(), TectonicOptions::default())
    }

    #[test]
    fn lookup_costs_one_rpc_per_level() {
        let t = svc();
        t.bulk_dir(&p("/a/b/c/d/e"));
        let mut lstats = RequestCtx::new();
        let resolved = t.lookup(&p("/a/b/c/d/e"), &mut lstats).unwrap();
        assert!(resolved.id.raw() > 1);
        assert_eq!(
            lstats.rpcs, 5,
            "level-by-level resolution: one RPC per level"
        );
    }

    #[test]
    fn object_lifecycle() {
        let t = svc();
        let mut stats = RequestCtx::new();
        t.mkdir(&p("/d"), &mut stats).unwrap();
        t.create(&p("/d/o"), 64, &mut stats).unwrap();
        assert_eq!(t.objstat(&p("/d/o"), &mut stats).unwrap().size, 64);
        assert_eq!(t.dirstat(&p("/d"), &mut stats).unwrap().attrs.entries, 1);
        t.delete(&p("/d/o"), &mut stats).unwrap();
        t.rmdir(&p("/d"), &mut stats).unwrap();
        assert!(t.lookup(&p("/d"), &mut stats).is_err());
    }

    #[test]
    fn rename_moves_subtree() {
        let t = svc();
        let mut stats = RequestCtx::new();
        t.bulk_dir(&p("/x/y"));
        t.bulk_object(&p("/x/y/o"), 7);
        t.bulk_dir(&p("/z"));
        t.rename_dir(&p("/x/y"), &p("/z/y2"), &mut stats).unwrap();
        assert_eq!(t.objstat(&p("/z/y2/o"), &mut stats).unwrap().size, 7);
        assert!(t.objstat(&p("/x/y/o"), &mut stats).is_err());
        assert!(matches!(
            t.rename_dir(&p("/z"), &p("/z/y2/inside"), &mut stats),
            Err(MetaError::RenameLoop { .. })
        ));
    }

    #[test]
    fn rmdir_nonempty_rejected() {
        let t = svc();
        let mut stats = RequestCtx::new();
        t.bulk_dir(&p("/d"));
        t.bulk_object(&p("/d/o"), 1);
        assert!(matches!(
            t.rmdir(&p("/d"), &mut stats),
            Err(MetaError::NotEmpty(_))
        ));
    }
}
