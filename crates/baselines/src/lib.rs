//! Re-implementations of the paper's three baselines (§6.1).
//!
//! The originals are not public, so — exactly as the paper did — we
//! re-implement each system's metadata path faithfully enough that its
//! published performance characteristics emerge from the same mechanisms:
//!
//! * [`tectonic::Tectonic`] — the DBtable-based approach (Figure 2):
//!   level-by-level multi-RPC path resolution over the sharded table, and
//!   — as §6.1 states — *relaxed consistency*: directory modifications are
//!   independent single-row writes plus a blocking-latch parent-attribute
//!   update, not distributed transactions.
//! * [`infinifs::InfiniFs`] — speculative parallel path resolution with
//!   hash-predicted directory ids, a bounded resolver pool (whose
//!   oversubscription under high concurrency reproduces the 7.4-RTT
//!   effect, §3.3), CFS-style relaxed single-shard directory modifications,
//!   a dedicated rename coordinator, and an optional proxy-side AM-Cache
//!   (Figure 20).
//! * [`locofs::LocoFs`] — the tiered design: *all* directory metadata on a
//!   single Raft-replicated directory server that resolves full paths
//!   locally, object metadata in the sharded DB, with object creation
//!   forced through the directory server for the parent update (its
//!   cross-component coordination overhead, §3.3).
//!
//! All three implement [`mantle_types::MetadataService`] and
//! [`mantle_types::BulkLoad`], so every workload and figure harness runs
//! unmodified against any system.

pub mod infinifs;
pub mod locofs;
pub mod tectonic;

pub use infinifs::{InfiniFs, InfiniFsOptions};
pub use locofs::{LocoFs, LocoFsOptions};
pub use tectonic::{Tectonic, TectonicOptions};
