//! The InfiniFS baseline: speculative parallel path resolution, CFS-style
//! relaxed directory modifications, a rename coordinator, and the optional
//! AM-Cache (§3.3, §6.1).
//!
//! Directory ids are *predicted*: a directory's id is a hash of its full
//! path, so the proxy can issue the lookups of every level concurrently
//! without waiting for parents. A rename leaves the moved subtree's ids in
//! place, so predictions under a renamed prefix mispredict and resolution
//! falls back to sequential steps — InfiniFS's documented behaviour.
//!
//! The concurrency envelope is a bounded resolver pool: each resolution
//! round grabs as many pool permits as it can (at least one) and issues
//! that many level-queries behind a single injected round trip. Under low
//! concurrency a 10-level path takes one or two rounds; at high client
//! counts permits are scarce, rounds shrink toward one query each, and
//! effective latency approaches sequential resolution — the "7.4 RTTs with
//! 512 threads" oversubscription effect of §3.3.

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;

use mantle_core::pathcache::{LeaseProbe, PathLeaseCache, PathLeaseConfig};
use mantle_index::TopDirPathCache;
use mantle_rpc::{RetryPolicy, SimNode};
use mantle_sync::Semaphore;
use mantle_tafdb::{attr_key, entry_key, Row, TafDb, TafDbOptions};
use mantle_types::{
    id::IdAllocator, AttrDelta, BulkLoad, DirAttrMeta, DirEntry, DirStat, InodeId, MetaError,
    MetaPath, MetadataService, ObjectMeta, Permission, Phase, RequestCtx, ResolvedPath, Result,
    RetryClass, SimConfig, ROOT_ID, SCALED_DB_SHARDS,
};

/// InfiniFS deployment options.
#[derive(Clone, Copy, Debug)]
pub struct InfiniFsOptions {
    /// Metadata shards (Table 2: 18 servers, scaled to 8).
    pub db_shards: usize,
    /// Total resolver-pool permits shared by all proxy threads. The paper's
    /// effect ("thread over-provisioning") appears when clients × depth
    /// exceeds this.
    pub resolver_pool: usize,
    /// Maximum speculative queries a single resolution issues per round.
    pub max_parallel: usize,
    /// Enable the AM-Cache proxy-side metadata cache (Figure 20).
    pub amcache: bool,
    /// Proxy-level retries for rename lock conflicts.
    pub rename_retries: u32,
}

impl Default for InfiniFsOptions {
    fn default() -> Self {
        InfiniFsOptions {
            db_shards: SCALED_DB_SHARDS,
            resolver_pool: 96,
            max_parallel: 16,
            amcache: false,
            rename_retries: 10_000,
        }
    }
}

/// Predicted directory id: a hash of the full path (FNV-1a, high bit set so
/// it can never collide with the root id).
fn predict(path: &MetaPath) -> InodeId {
    let mut h: u64 = 0xcbf29ce484222325;
    for comp in path.components() {
        for b in comp.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= 0x2f; // Component separator.
        h = h.wrapping_mul(0x100000001b3);
    }
    InodeId(h | (1 << 63))
}

/// The InfiniFS-style metadata service.
pub struct InfiniFs {
    db: Arc<TafDb>,
    opts: InfiniFsOptions,
    config: SimConfig,
    pool: Semaphore,
    coordinator: SimNode,
    /// Rename coordinator lock table: source paths of in-flight renames.
    rename_locks: Mutex<HashSet<MetaPath>>,
    /// AM-Cache: full-path resolution cache (k = 0).
    amcache: TopDirPathCache,
    /// Client-side path-lease cache — the same cache Mantle's proxy gets
    /// (Table-1 fairness). InfiniFS has no namespace-version metadata, so
    /// an expired lease revalidates with a full speculative re-resolve.
    pcache: PathLeaseCache,
    /// Fault plan for the `LeaseExpire`/`StaleRead` probe faults.
    pcache_faults: mantle_rpc::FaultSlot,
    ids: IdAllocator,
    clock: std::sync::atomic::AtomicU64,
}

impl InfiniFs {
    /// Builds an InfiniFS-style service.
    pub fn new(sim: SimConfig, opts: InfiniFsOptions) -> Arc<Self> {
        let db_opts = TafDbOptions {
            n_shards: opts.db_shards,
            // No delta records: rename transactions conflict in place, the
            // source of its dirrename-s retry storms (§6.2).
            delta_records: false,
            ..TafDbOptions::default()
        };
        Arc::new(InfiniFs {
            db: TafDb::new(sim, db_opts),
            opts,
            config: sim,
            pool: Semaphore::new(opts.resolver_pool),
            coordinator: SimNode::new("infinifs-coord", sim.index_node_permits, sim),
            rename_locks: Mutex::new(HashSet::new()),
            amcache: TopDirPathCache::new(0, opts.amcache),
            pcache: PathLeaseCache::new(PathLeaseConfig::from_env(), "infinifs"),
            pcache_faults: mantle_rpc::FaultSlot::new(),
            ids: IdAllocator::new(),
            clock: std::sync::atomic::AtomicU64::new(1),
        })
    }

    /// The underlying sharded table (inspection).
    pub fn db(&self) -> &Arc<TafDb> {
        &self.db
    }

    /// Installs (or clears) a fault plan on the shards and the rename
    /// coordinator node.
    pub fn install_faults(&self, plan: Option<Arc<mantle_rpc::FaultPlan>>) {
        self.db.install_faults(plan.clone());
        self.coordinator.set_faults(plan.clone());
        self.pcache_faults.install(plan);
    }

    /// The client-side path-lease cache (statistics, test inspection).
    pub fn path_cache(&self) -> &PathLeaseCache {
        &self.pcache
    }

    fn now(&self) -> u64 {
        self.clock
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Path resolution, optionally short-circuited by the path-lease cache.
    fn resolve_dir(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<ResolvedPath> {
        if path.is_root() {
            return Ok(ResolvedPath {
                id: ROOT_ID,
                permission: Permission::ALL,
            });
        }
        if self.pcache.enabled() {
            return self.leased_resolve(path, stats);
        }
        self.speculative_resolve(path, stats)
    }

    /// Resolution through the path-lease cache. Without version metadata a
    /// revalidation is a full speculative re-resolve whose pid is compared
    /// against the cached one; leases here save RPCs only while live.
    fn leased_resolve(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<ResolvedPath> {
        let ttl = self.pcache.config().lease_ttl;
        let force_expire = self
            .pcache_faults
            .get()
            .is_some_and(|plan| plan.lease_expires("infinifs-proxy"));
        let probe = self.pcache.probe(path, force_expire);
        match probe {
            LeaseProbe::Hit(lease) => {
                stats.cache_hits += 1;
                return Ok(ResolvedPath {
                    id: lease.pid,
                    permission: lease.permission,
                });
            }
            LeaseProbe::NegativeHit => {
                stats.cache_hits += 1;
                return Err(MetaError::NotFound(path.to_string()));
            }
            _ => {}
        }
        let expired = match probe {
            LeaseProbe::Expired(old) => Some(old),
            _ => {
                stats.cache_misses += 1;
                None
            }
        };
        let token = self.pcache.begin();
        match self.speculative_resolve(path, stats) {
            Ok(resolved) => {
                let fresh = mantle_types::LeasedPath {
                    resolved,
                    version: 0,
                    lease_ttl: ttl,
                };
                if let Some(old) = expired {
                    let stale_read = self
                        .pcache_faults
                        .get()
                        .is_some_and(|plan| plan.stale_read_fires("infinifs-proxy"));
                    let matched = resolved.id == old.pid && !stale_read;
                    let dropped = self.pcache.revalidated(path, matched, &fresh, token, stats);
                    if matched {
                        stats.cache_revalidations += 1;
                    } else {
                        stats.cache_invalidations += dropped as u32;
                    }
                } else {
                    self.pcache.fill(path, &fresh, token, stats);
                }
                Ok(resolved)
            }
            Err(e @ MetaError::NotFound(_)) => {
                if expired.is_some() {
                    stats.cache_invalidations +=
                        self.pcache.revalidated_gone(path, token, stats) as u32;
                } else {
                    self.pcache.fill_negative(path, token, stats);
                }
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    /// Speculative parallel resolution with sequential fallback on
    /// misprediction.
    fn speculative_resolve(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<ResolvedPath> {
        if let Some(prefix) = self.amcache.prefix_of(path) {
            if let Some(hit) = self.amcache.get(&prefix) {
                stats.cache_hits += 1;
                return Ok(ResolvedPath {
                    id: hit.pid,
                    permission: hit.permission,
                });
            }
            stats.cache_misses += 1;
        }

        let comps: Vec<&str> = path.components().collect();
        let depth = comps.len();

        // Fire the speculative queries in permit-bounded rounds.
        let mut rows: Vec<Option<Row>> = Vec::with_capacity(depth);
        let mut issued = 0;
        while issued < depth {
            let mut permits = vec![self.pool.acquire()];
            while permits.len() < (depth - issued).min(self.opts.max_parallel) {
                match self.pool.try_acquire() {
                    Some(g) => permits.push(g),
                    None => break,
                }
            }
            let width = permits.len();
            // One injected round trip covers the whole parallel round.
            mantle_rpc::net_round_trip(&self.config);
            for j in 0..width {
                let level = issued + j;
                let pred_parent = if level == 0 {
                    ROOT_ID
                } else {
                    predict(&path.prefix(level))
                };
                rows.push(self.db.get_entry_batched(pred_parent, comps[level], stats));
            }
            issued += width;
        }

        // Validate the chain; mispredicted levels resolve sequentially.
        let mut pid = ROOT_ID;
        let mut permission = Permission::ALL;
        for level in 0..depth {
            if !permission.allows_traverse() {
                return Err(MetaError::PermissionDenied(path.to_string()));
            }
            let pred_parent = if level == 0 {
                ROOT_ID
            } else {
                predict(&path.prefix(level))
            };
            let (id, perm) = if pid == pred_parent {
                match &rows[level] {
                    Some(Row::DirAccess { id, permission }) => (*id, *permission),
                    Some(_) => return Err(MetaError::NotADirectory(comps[level].to_string())),
                    None => return Err(MetaError::NotFound(path.to_string())),
                }
            } else {
                // Misprediction (renamed ancestor): sequential fallback.
                mantle_obs::counter("infinifs_mispredictions_total", &[]).inc();
                mantle_obs::flight::annotate_with(|| format!("infinifs:mispredict level={level}"));
                self.db.resolve_step(pid, comps[level], stats)?
            };
            pid = id;
            permission = permission.intersect(perm);
        }

        if let Some(prefix) = self.amcache.prefix_of(path) {
            self.amcache.try_fill(
                prefix,
                mantle_index::cache::CachedPrefix { pid, permission },
                || true,
            );
        }
        Ok(ResolvedPath {
            id: pid,
            permission,
        })
    }

    fn resolve_parent(
        &self,
        path: &MetaPath,
        stats: &mut RequestCtx,
    ) -> Result<(ResolvedPath, String)> {
        let parent = path
            .parent()
            .ok_or_else(|| MetaError::InvalidPath("operation on root".into()))?;
        let name = path.name().expect("non-root").to_string();
        Ok((self.resolve_dir(&parent, stats)?, name))
    }

    /// Acquires the coordinator's rename lock on `src` (one RPC).
    fn coordinator_lock(
        &self,
        src: &MetaPath,
        dst: &MetaPath,
        stats: &mut RequestCtx,
    ) -> Result<()> {
        self.coordinator.rpc(stats, || {
            let mut locks = self.rename_locks.lock();
            let conflict = locks.iter().any(|locked| {
                locked.is_prefix_of(src)
                    || src.is_prefix_of(locked)
                    || locked.is_prefix_of(dst)
                    || dst.is_prefix_of(locked)
            });
            if conflict {
                return Err(MetaError::RenameLocked(src.to_string()));
            }
            locks.insert(src.clone());
            Ok(())
        })
    }

    fn coordinator_unlock(&self, src: &MetaPath, stats: &mut RequestCtx) {
        self.coordinator.rpc(stats, || {
            self.rename_locks.lock().remove(src);
        });
    }
}

impl MetadataService for InfiniFs {
    fn name(&self) -> &'static str {
        "infinifs"
    }

    fn lookup(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<ResolvedPath> {
        stats.time(Phase::Lookup, |stats| self.resolve_dir(path, stats))
    }

    fn mkdir(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<InodeId> {
        let (parent, name) = stats.time(Phase::Lookup, |stats| self.resolve_parent(path, stats))?;
        stats.time(Phase::Execute, |stats| {
            if !parent.permission.allows(Permission::WRITE) {
                return Err(MetaError::PermissionDenied(path.to_string()));
            }
            let mut id = predict(path);
            let now = self.now();
            // CFS two-transaction strategy: (1) the new directory's own
            // attribute row, single shard; (2) the entry under the parent
            // plus the parent-attribute bump, single shard, serialized by
            // an atomic primitive (latch) instead of aborting.
            if let Err(MetaError::AlreadyExists(_)) =
                self.db
                    .insert_row(attr_key(id), Row::DirAttr(DirAttrMeta::new(now, 0)), stats)
            {
                // The predicted id is taken: a directory created earlier at
                // this path was renamed away and kept its id. Fall back to
                // an unpredictable id — lookups below this directory will
                // mispredict and resolve sequentially, which is InfiniFS's
                // documented post-rename behaviour.
                id = self.ids.alloc();
                self.db
                    .insert_row(attr_key(id), Row::DirAttr(DirAttrMeta::new(now, 0)), stats)?;
            }
            if let Err(e) = self.db.insert_row(
                entry_key(parent.id, &name),
                Row::DirAccess {
                    id,
                    permission: Permission::ALL,
                },
                stats,
            ) {
                let _ = self.db.delete_row(attr_key(id), stats);
                return Err(e);
            }
            self.db.update_attr_latched(
                parent.id,
                AttrDelta {
                    nlink: 1,
                    entries: 1,
                    mtime: now,
                },
                stats,
            )?;
            // Scrub any cached NotFound verdict for the new directory.
            self.pcache.invalidate_exact(path);
            Ok(id)
        })
    }

    fn rmdir(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<()> {
        let (parent, name) = stats.time(Phase::Lookup, |stats| self.resolve_parent(path, stats))?;
        stats.time(Phase::Execute, |stats| {
            let (dir, _) = self.db.resolve_step(parent.id, &name, stats)?;
            if !self.db.readdir(dir, stats).is_empty() {
                return Err(MetaError::NotEmpty(path.to_string()));
            }
            let now = self.now();
            self.db.delete_row(entry_key(parent.id, &name), stats)?;
            self.db.delete_row(attr_key(dir), stats)?;
            self.db.update_attr_latched(
                parent.id,
                AttrDelta {
                    nlink: -1,
                    entries: -1,
                    mtime: now,
                },
                stats,
            )?;
            self.amcache.invalidate_subtree(path);
            stats.cache_invalidations += self.pcache.invalidate_subtree(path) as u32;
            Ok(())
        })
    }

    fn create(&self, path: &MetaPath, size: u64, stats: &mut RequestCtx) -> Result<InodeId> {
        let (parent, name) = stats.time(Phase::Lookup, |stats| self.resolve_parent(path, stats))?;
        stats.time(Phase::Execute, |stats| {
            if !parent.permission.allows(Permission::WRITE) {
                return Err(MetaError::PermissionDenied(path.to_string()));
            }
            let id = self.ids.alloc();
            let now = self.now();
            self.db.insert_row(
                entry_key(parent.id, &name),
                Row::Object(ObjectMeta {
                    pid: parent.id,
                    name: name.clone(),
                    id,
                    size,
                    blob: 0,
                    ctime: now,
                    permission: Permission::ALL,
                }),
                stats,
            )?;
            self.db.update_attr_latched(
                parent.id,
                AttrDelta {
                    nlink: 0,
                    entries: 1,
                    mtime: now,
                },
                stats,
            )?;
            Ok(id)
        })
    }

    fn delete(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<()> {
        let (parent, name) = stats.time(Phase::Lookup, |stats| self.resolve_parent(path, stats))?;
        stats.time(Phase::Execute, |stats| {
            self.db.get_object(parent.id, &name, stats)?;
            let now = self.now();
            self.db.delete_row(entry_key(parent.id, &name), stats)?;
            self.db.update_attr_latched(
                parent.id,
                AttrDelta {
                    nlink: 0,
                    entries: -1,
                    mtime: now,
                },
                stats,
            )?;
            Ok(())
        })
    }

    fn objstat(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<ObjectMeta> {
        // InfiniFS "bypasses the execution phase for objstat, handling it
        // in the lookup phase" (§6.3): the final level rides the same
        // speculative fan-out.
        stats.time(Phase::Lookup, |stats| {
            let (parent, name) = self.resolve_parent(path, stats)?;
            self.db.get_object(parent.id, &name, stats)
        })
    }

    fn dirstat(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<DirStat> {
        let dir = stats.time(Phase::Lookup, |stats| self.resolve_dir(path, stats))?;
        stats.time(Phase::Execute, |stats| {
            let attrs = self.db.dir_stat(dir.id, stats)?;
            Ok(DirStat {
                id: dir.id,
                attrs,
                permission: dir.permission,
            })
        })
    }

    fn readdir(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<Vec<DirEntry>> {
        let dir = stats.time(Phase::Lookup, |stats| self.resolve_dir(path, stats))?;
        stats.time(Phase::Execute, |stats| Ok(self.db.readdir(dir.id, stats)))
    }

    fn list(
        &self,
        path: &MetaPath,
        start_after: Option<&str>,
        limit: usize,
        stats: &mut RequestCtx,
    ) -> Result<(Vec<DirEntry>, bool)> {
        // InfiniFS stores entries in the ordered shard store too, so paging
        // is a bounded engine range scan rather than the readdir fallback.
        let dir = stats.time(Phase::Lookup, |stats| self.resolve_dir(path, stats))?;
        stats.time(Phase::Execute, |stats| {
            Ok(self.db.readdir_page(dir.id, start_after, limit, stats))
        })
    }

    fn rename_dir(&self, src: &MetaPath, dst: &MetaPath, stats: &mut RequestCtx) -> Result<()> {
        if src.is_root() || dst.is_root() {
            return Err(MetaError::InvalidRename("root cannot be renamed".into()));
        }
        if src.is_prefix_of(dst) {
            return Err(MetaError::RenameLoop {
                src: src.to_string(),
                dst: dst.to_string(),
            });
        }
        let (src_parent, src_name, dst_parent, dst_name) = stats.time(Phase::Lookup, |stats| {
            let (sp, sn) = self.resolve_parent(src, stats)?;
            let (dp, dn) = self.resolve_parent(dst, stats)?;
            Ok::<_, MetaError>((sp, sn, dp, dn))
        })?;

        // Coordinator lock with retry (the paper's rename coordinator runs
        // on its own servers; conflicts abort and retry). Only
        // `RenameLocked` re-arms the lock attempt — everything else
        // (including conflicts from the metadata transaction below) aborts.
        RetryPolicy::rename(self.opts.rename_retries, self.config.rtt_micros == 0).run(
            stats,
            |e| matches!(e, MetaError::RenameLocked(_)).then_some(RetryClass::Rename),
            |_, _| {},
            |stats| {
                stats.time(Phase::LoopDetect, |stats| {
                    self.coordinator_lock(src, dst, stats)
                })
            },
        )?;

        let out = stats.time(Phase::Execute, |stats| {
            let (src_id, src_perm) = self.db.resolve_step(src_parent.id, &src_name, stats)?;
            let now = self.now();
            let mut ops = vec![
                mantle_tafdb::TxnOp::Delete {
                    key: entry_key(src_parent.id, &src_name),
                },
                mantle_tafdb::TxnOp::InsertUnique {
                    key: entry_key(dst_parent.id, &dst_name),
                    row: Row::DirAccess {
                        id: src_id,
                        permission: src_perm,
                    },
                },
            ];
            if src_parent.id == dst_parent.id {
                ops.push(mantle_tafdb::TxnOp::AttrUpdate {
                    dir: src_parent.id,
                    delta: AttrDelta {
                        nlink: 0,
                        entries: 0,
                        mtime: now,
                    },
                });
            } else {
                ops.push(mantle_tafdb::TxnOp::AttrUpdate {
                    dir: src_parent.id,
                    delta: AttrDelta {
                        nlink: -1,
                        entries: -1,
                        mtime: now,
                    },
                });
                ops.push(mantle_tafdb::TxnOp::AttrUpdate {
                    dir: dst_parent.id,
                    delta: AttrDelta {
                        nlink: 1,
                        entries: 1,
                        mtime: now,
                    },
                });
            }
            // Distributed transaction with in-place attribute updates: the
            // no-wait conflicts under dirrename-s retry inside execute().
            self.db.execute(&ops, stats)?;
            self.amcache.invalidate_subtree(src);
            stats.cache_invalidations += self.pcache.invalidate_subtree(src) as u32;
            stats.cache_invalidations += self.pcache.invalidate_subtree(dst) as u32;
            Ok(())
        });
        let mut unlock_stats = RequestCtx::new();
        self.coordinator_unlock(src, &mut unlock_stats);
        stats.absorb(&unlock_stats);
        out
    }
}

impl BulkLoad for InfiniFs {
    fn bulk_dir(&self, path: &MetaPath) -> InodeId {
        let mut pid = ROOT_ID;
        let mut current = MetaPath::root();
        for comp in path.components() {
            current = current.child(comp);
            match self.db.raw_get(&entry_key(pid, comp)) {
                Some(Row::DirAccess { id, .. }) => pid = id,
                Some(_) => panic!("bulk_dir crosses an object in {path}"),
                None => {
                    // Directory ids must match the speculative prediction.
                    let id = predict(&current);
                    let now = self.now();
                    self.db.raw_put(
                        entry_key(pid, comp),
                        Row::DirAccess {
                            id,
                            permission: Permission::ALL,
                        },
                    );
                    self.db
                        .raw_put(attr_key(id), Row::DirAttr(DirAttrMeta::new(now, 0)));
                    if let Some(Row::DirAttr(mut attrs)) = self.db.raw_get(&attr_key(pid)) {
                        attrs.apply_delta(&AttrDelta {
                            nlink: 1,
                            entries: 1,
                            mtime: now,
                        });
                        self.db.raw_put(attr_key(pid), Row::DirAttr(attrs));
                    }
                    pid = id;
                }
            }
        }
        pid
    }

    fn bulk_object(&self, path: &MetaPath, size: u64) {
        let parent = path.parent().expect("objects cannot be the root");
        let name = path.name().expect("non-root");
        let pid = self.bulk_dir(&parent);
        let id = self.ids.alloc();
        let now = self.now();
        self.db.raw_put(
            entry_key(pid, name),
            Row::Object(ObjectMeta {
                pid,
                name: name.to_string(),
                id,
                size,
                blob: 0,
                ctime: now,
                permission: Permission::ALL,
            }),
        );
        if let Some(Row::DirAttr(mut attrs)) = self.db.raw_get(&attr_key(pid)) {
            attrs.apply_delta(&AttrDelta {
                nlink: 0,
                entries: 1,
                mtime: now,
            });
            self.db.raw_put(attr_key(pid), Row::DirAttr(attrs));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> MetaPath {
        MetaPath::parse(s).unwrap()
    }

    fn svc() -> Arc<InfiniFs> {
        InfiniFs::new(SimConfig::instant(), InfiniFsOptions::default())
    }

    #[test]
    fn prediction_is_stable_and_collision_safe_for_root() {
        assert_eq!(predict(&p("/a/b")), predict(&p("/a/b")));
        assert_ne!(predict(&p("/a/b")), predict(&p("/a/c")));
        assert_ne!(predict(&p("/a")), ROOT_ID);
        // Concatenation ambiguity is broken by the separator byte.
        assert_ne!(predict(&p("/ab")), predict(&p("/a/b")));
    }

    #[test]
    fn speculative_lookup_resolves_unrenamed_chain() {
        let f = svc();
        f.bulk_dir(&p("/a/b/c/d/e"));
        let mut stats = RequestCtx::new();
        let resolved = f.lookup(&p("/a/b/c/d/e"), &mut stats).unwrap();
        assert_eq!(resolved.id, predict(&p("/a/b/c/d/e")));
        // All five levels queried (speculatively), none sequentially re-run.
        assert_eq!(stats.rpcs, 5);
    }

    #[test]
    fn rename_causes_misprediction_then_fallback_still_resolves() {
        let f = svc();
        f.bulk_dir(&p("/a/b/c"));
        f.bulk_dir(&p("/z"));
        let mut stats = RequestCtx::new();
        f.rename_dir(&p("/a/b"), &p("/z/b2"), &mut stats).unwrap();
        // The moved directory kept its old id (= predict("/a/b")), so the
        // speculative query for level "c" under predict("/z/b2") misses and
        // resolution falls back to sequential steps — but still succeeds.
        let mut lstats = RequestCtx::new();
        let resolved = f.lookup(&p("/z/b2/c"), &mut lstats).unwrap();
        assert_eq!(resolved.id, predict(&p("/a/b/c")));
        assert!(
            lstats.rpcs > 3,
            "misprediction must add sequential fallback RPCs, got {}",
            lstats.rpcs
        );
    }

    #[test]
    fn object_lifecycle_with_cfs_mkdir() {
        let f = svc();
        let mut stats = RequestCtx::new();
        f.mkdir(&p("/d"), &mut stats).unwrap();
        f.mkdir(&p("/d/e"), &mut stats).unwrap();
        f.create(&p("/d/e/o"), 11, &mut stats).unwrap();
        assert_eq!(f.objstat(&p("/d/e/o"), &mut stats).unwrap().size, 11);
        assert_eq!(f.dirstat(&p("/d/e"), &mut stats).unwrap().attrs.entries, 1);
        f.delete(&p("/d/e/o"), &mut stats).unwrap();
        f.rmdir(&p("/d/e"), &mut stats).unwrap();
        assert!(f.lookup(&p("/d/e"), &mut stats).is_err());
    }

    #[test]
    fn concurrent_renames_of_same_source_conflict_on_coordinator() {
        let f = svc();
        f.bulk_dir(&p("/s"));
        f.bulk_dir(&p("/t1"));
        f.bulk_dir(&p("/t2"));
        // Hold the lock manually, then observe the conflict.
        let mut stats = RequestCtx::new();
        f.coordinator_lock(&p("/s"), &p("/t1/x"), &mut stats)
            .unwrap();
        assert!(matches!(
            f.coordinator_lock(&p("/s"), &p("/t2/y"), &mut stats),
            Err(MetaError::RenameLocked(_))
        ));
        f.coordinator_unlock(&p("/s"), &mut stats);
        f.coordinator_lock(&p("/s"), &p("/t2/y"), &mut stats)
            .unwrap();
        f.coordinator_unlock(&p("/s"), &mut stats);
    }

    #[test]
    fn amcache_hits_skip_rpcs() {
        let opts = InfiniFsOptions {
            amcache: true,
            ..InfiniFsOptions::default()
        };
        let f = InfiniFs::new(SimConfig::instant(), opts);
        f.bulk_dir(&p("/a/b/c"));
        let mut s1 = RequestCtx::new();
        f.lookup(&p("/a/b/c"), &mut s1).unwrap();
        // With MANTLE_PATH_CACHE=on the path-lease cache records its own
        // miss before the AM-Cache does, so the cold lookup counts two.
        let expected_misses = if PathLeaseConfig::from_env().enabled {
            2
        } else {
            1
        };
        assert_eq!(s1.cache_misses, expected_misses);
        assert_eq!(s1.rpcs, 3);
        let mut s2 = RequestCtx::new();
        f.lookup(&p("/a/b/c"), &mut s2).unwrap();
        assert_eq!(s2.cache_hits, 1);
        assert_eq!(s2.rpcs, 0, "AM-Cache hit should bypass all metadata RPCs");
    }
}
