//! The LocoFS baseline: tiered metadata with a centralized directory
//! server (§3.3, §6.1).
//!
//! All directory metadata (tree structure *and* attributes) lives on one
//! Raft-replicated directory server that resolves full paths locally in a
//! single RPC; object metadata lives in the sharded DB. The documented
//! weaknesses emerge structurally:
//!
//! * the directory server is a single node with no prefix cache and no
//!   follower reads, so lookups saturate its CPU envelope (Figure 12's
//!   ceiling, Figure 17's knee at depth ≈ 6);
//! * every directory mutation funnels through one Raft group (Figure 14's
//!   mkdir-e floor);
//! * object creation needs the directory server (duplicate-check + parent
//!   attribute update) *and* the object DB — the cross-component
//!   coordination overhead called out in §3.3.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use mantle_index::{IndexEntry, IndexTable};
use mantle_raft::{RaftGroup, RaftOptions, RaftReplica, StateMachine};
use mantle_rpc::SimNode;
use mantle_tafdb::{entry_key, Row, TafDb, TafDbOptions};
use mantle_types::{
    id::IdAllocator, AttrDelta, BulkLoad, DirAttrMeta, DirEntry, DirStat, EntryKind, InodeId,
    MetaError, MetaPath, MetadataService, ObjectMeta, Permission, Phase, RequestCtx, ResolvedPath,
    Result, SimConfig, ROOT_ID, SCALED_DB_SHARDS,
};

/// LocoFS deployment options.
#[derive(Clone, Copy, Debug)]
pub struct LocoFsOptions {
    /// Object-metadata shards (Table 2: 18 servers, scaled to 8).
    pub db_shards: usize,
    /// Directory-server Raft replicas (Table 2: 3 servers).
    pub dir_replicas: usize,
    /// Raft tuning for the directory server.
    pub raft: RaftOptions,
}

impl Default for LocoFsOptions {
    fn default() -> Self {
        LocoFsOptions {
            db_shards: SCALED_DB_SHARDS,
            dir_replicas: 3,
            // LocoFS predates batched Raft pipelines; §6.3 attributes its
            // worst-in-class mkdir throughput to being "throttled by the
            // Raft throughput" — modelled as unbatched, depth-1 replication.
            raft: RaftOptions {
                log_batching: false,
                max_batch: 1,
                ..RaftOptions::default()
            },
        }
    }
}

/// Replicated directory-server commands.
#[derive(Clone, Debug)]
pub enum LocoCmd {
    /// Raft term-start barrier.
    Noop,
    /// Create a directory (entry + attributes + parent bump).
    Mkdir {
        /// Parent id.
        pid: InodeId,
        /// Name.
        name: Arc<str>,
        /// New directory id.
        id: InodeId,
        /// Creation time.
        now: u64,
    },
    /// Remove an (empty) directory.
    Rmdir {
        /// Parent id.
        pid: InodeId,
        /// Name.
        name: Arc<str>,
        /// The directory's id.
        id: InodeId,
        /// Time.
        now: u64,
    },
    /// Move a directory edge.
    Rename {
        /// Source parent.
        src_pid: InodeId,
        /// Source name.
        src_name: Arc<str>,
        /// Destination parent.
        dst_pid: InodeId,
        /// Destination name.
        dst_name: Arc<str>,
        /// Time.
        now: u64,
    },
    /// Bump a directory's attributes (object create/delete).
    Bump {
        /// Directory.
        dir: InodeId,
        /// Delta.
        delta: AttrDelta,
    },
}

/// The directory server's replicated state.
pub struct LocoSm {
    table: IndexTable,
    attrs: Mutex<HashMap<InodeId, DirAttrMeta>>,
    children: Mutex<HashMap<InodeId, Vec<(String, InodeId)>>>,
    config: SimConfig,
}

impl LocoSm {
    fn new(config: SimConfig) -> Self {
        let attrs = HashMap::from([(ROOT_ID, DirAttrMeta::new(0, 0))]);
        LocoSm {
            table: IndexTable::new(),
            attrs: Mutex::new(attrs),
            children: Mutex::new(HashMap::new()),
            config,
        }
    }

    /// Full-path resolution, local to the directory server. Pays the same
    /// per-level CPU cost as the IndexNode's table walk — but with no
    /// TopDirPathCache in front of it.
    fn resolve(&self, path: &MetaPath) -> Result<ResolvedPath> {
        // One batched injection for the whole walk (micro-sleeps per level
        // would overshoot the OS timer resolution).
        mantle_rpc::inject_delay(std::time::Duration::from_micros(
            self.config.index_level_micros * path.depth() as u64,
        ));
        let mut pid = ROOT_ID;
        let mut permission = Permission::ALL;
        for comp in path.components() {
            if !permission.allows_traverse() {
                return Err(MetaError::PermissionDenied(path.to_string()));
            }
            match self.table.get(pid, comp) {
                Some(e) => {
                    pid = e.id;
                    permission = permission.intersect(e.permission);
                }
                None => return Err(MetaError::NotFound(path.to_string())),
            }
        }
        Ok(ResolvedPath {
            id: pid,
            permission,
        })
    }

    fn bump(&self, dir: InodeId, delta: &AttrDelta) {
        if let Some(attrs) = self.attrs.lock().get_mut(&dir) {
            attrs.apply_delta(delta);
        }
    }

    fn insert_dir(&self, pid: InodeId, name: &str, id: InodeId, now: u64) {
        self.table.insert(
            pid,
            name,
            IndexEntry {
                id,
                permission: Permission::ALL,
                lock: None,
                version: 1,
            },
        );
        self.attrs.lock().insert(id, DirAttrMeta::new(now, 0));
        self.children
            .lock()
            .entry(pid)
            .or_default()
            .push((name.to_string(), id));
        self.bump(
            pid,
            &AttrDelta {
                nlink: 1,
                entries: 1,
                mtime: now,
            },
        );
    }
}

impl StateMachine for LocoSm {
    type Command = LocoCmd;

    fn apply(&self, _index: u64, cmd: &LocoCmd) {
        match cmd {
            LocoCmd::Noop => {}
            LocoCmd::Mkdir { pid, name, id, now } => {
                // Racing proposals validate before replication; the second
                // arrival must not double-create.
                if self.table.get(*pid, name).is_none() {
                    self.insert_dir(*pid, name, *id, *now);
                }
            }
            LocoCmd::Rmdir { pid, name, id, now } => {
                if self.table.get(*pid, name).map(|e| e.id) != Some(*id) {
                    return;
                }
                self.table.remove(*pid, name);
                self.attrs.lock().remove(id);
                if let Some(list) = self.children.lock().get_mut(pid) {
                    list.retain(|(n, _)| n != name.as_ref());
                }
                self.bump(
                    *pid,
                    &AttrDelta {
                        nlink: -1,
                        entries: -1,
                        mtime: *now,
                    },
                );
            }
            LocoCmd::Rename {
                src_pid,
                src_name,
                dst_pid,
                dst_name,
                now,
            } => {
                if self.table.get(*dst_pid, dst_name).is_some() {
                    return; // A racing rename/mkdir took the destination.
                }
                if let Some(entry) = self.table.remove(*src_pid, src_name) {
                    let id = entry.id;
                    self.table.insert(*dst_pid, dst_name, entry);
                    let mut children = self.children.lock();
                    if let Some(list) = children.get_mut(src_pid) {
                        list.retain(|(n, _)| n != src_name.as_ref());
                    }
                    children
                        .entry(*dst_pid)
                        .or_default()
                        .push((dst_name.to_string(), id));
                    drop(children);
                    if src_pid == dst_pid {
                        self.bump(
                            *src_pid,
                            &AttrDelta {
                                nlink: 0,
                                entries: 0,
                                mtime: *now,
                            },
                        );
                    } else {
                        self.bump(
                            *src_pid,
                            &AttrDelta {
                                nlink: -1,
                                entries: -1,
                                mtime: *now,
                            },
                        );
                        self.bump(
                            *dst_pid,
                            &AttrDelta {
                                nlink: 1,
                                entries: 1,
                                mtime: *now,
                            },
                        );
                    }
                }
            }
            LocoCmd::Bump { dir, delta } => self.bump(*dir, delta),
        }
    }

    fn barrier() -> LocoCmd {
        LocoCmd::Noop
    }

    fn snapshot(&self) -> Vec<u8> {
        use mantle_types::snapshot::SnapshotWriter;
        let mut w = SnapshotWriter::new();
        let entries = self.table.sorted_entries();
        w.u64(entries.len() as u64);
        for (pid, name, e) in entries {
            w.u64(pid.0);
            w.str(&name);
            w.u64(e.id.0);
            w.u16(e.permission.0);
        }
        // HashMaps iterate in arbitrary order; sort for byte determinism.
        let attrs = self.attrs.lock();
        let mut ids: Vec<InodeId> = attrs.keys().copied().collect();
        ids.sort_unstable();
        w.u64(ids.len() as u64);
        for id in ids {
            let a = &attrs[&id];
            w.u64(id.0);
            w.i64(a.nlink);
            w.i64(a.entries);
            w.u64(a.ctime);
            w.u64(a.mtime);
            w.u32(a.owner);
        }
        drop(attrs);
        let children = self.children.lock();
        let mut pids: Vec<InodeId> = children.keys().copied().collect();
        pids.sort_unstable();
        w.u64(pids.len() as u64);
        for pid in pids {
            let mut list = children[&pid].clone();
            list.sort();
            w.u64(pid.0);
            w.u64(list.len() as u64);
            for (name, id) in &list {
                w.str(name);
                w.u64(id.0);
            }
        }
        w.finish()
    }

    fn restore(&self, image: &[u8]) {
        use mantle_types::snapshot::SnapshotReader;
        let mut r = SnapshotReader::new(image);
        self.table.clear();
        let n = r.u64();
        for _ in 0..n {
            let pid = InodeId(r.u64());
            let name = r.str();
            let id = InodeId(r.u64());
            let permission = Permission(r.u16());
            self.table.insert(
                pid,
                &name,
                IndexEntry {
                    id,
                    permission,
                    lock: None,
                    version: 1,
                },
            );
        }
        let mut attrs = HashMap::new();
        for _ in 0..r.u64() {
            let id = InodeId(r.u64());
            attrs.insert(
                id,
                DirAttrMeta {
                    nlink: r.i64(),
                    entries: r.i64(),
                    ctime: r.u64(),
                    mtime: r.u64(),
                    owner: r.u32(),
                },
            );
        }
        *self.attrs.lock() = attrs;
        let mut children: HashMap<InodeId, Vec<(String, InodeId)>> = HashMap::new();
        for _ in 0..r.u64() {
            let pid = InodeId(r.u64());
            let len = r.u64() as usize;
            let mut list = Vec::with_capacity(len);
            for _ in 0..len {
                let name = r.str();
                let id = InodeId(r.u64());
                list.push((name, id));
            }
            children.insert(pid, list);
        }
        *self.children.lock() = children;
        debug_assert!(r.is_empty(), "trailing bytes in LocoSm snapshot");
    }
}

/// The LocoFS-style tiered metadata service.
pub struct LocoFs {
    dir_server: RaftGroup<LocoSm>,
    db: Arc<TafDb>,
    ids: IdAllocator,
    clock: std::sync::atomic::AtomicU64,
}

impl LocoFs {
    /// Builds a LocoFS-style deployment.
    pub fn new(sim: SimConfig, opts: LocoFsOptions) -> Arc<Self> {
        let nodes: Vec<Arc<SimNode>> = (0..opts.dir_replicas)
            .map(|i| {
                Arc::new(SimNode::new(
                    format!("locodir{i}"),
                    sim.index_node_permits,
                    sim,
                ))
            })
            .collect();
        let dir_server = RaftGroup::new(sim, opts.raft, nodes, opts.dir_replicas, |_| {
            LocoSm::new(sim)
        });
        let db_opts = TafDbOptions {
            n_shards: opts.db_shards,
            delta_records: false,
            ..TafDbOptions::default()
        };
        Arc::new(LocoFs {
            dir_server,
            db: TafDb::new(sim, db_opts),
            ids: IdAllocator::new(),
            clock: std::sync::atomic::AtomicU64::new(1),
        })
    }

    fn now(&self) -> u64 {
        self.clock
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    fn leader(&self) -> Result<Arc<RaftReplica<LocoSm>>> {
        self.dir_server.leader().ok_or_else(|| {
            mantle_obs::flight::annotate("locofs:no_dir_leader");
            MetaError::Unavailable("no directory-server leader".into())
        })
    }

    /// Installs (or clears) a fault plan on the directory server's Raft
    /// group and the file-metadata shards.
    pub fn install_faults(&self, plan: Option<Arc<mantle_rpc::FaultPlan>>) {
        self.dir_server.install_faults(plan.clone());
        self.db.install_faults(plan);
    }

    /// One RPC to the directory server running `f` against its local state.
    fn dir_rpc<R>(
        &self,
        stats: &mut RequestCtx,
        f: impl FnOnce(&Arc<RaftReplica<LocoSm>>) -> Result<R>,
    ) -> Result<R> {
        let leader = self.leader()?;
        leader.node().rpc(stats, || f(&leader))
    }

    /// Like [`Self::dir_rpc`], but additionally proposes `cmd` *after* the
    /// in-permit work: validation occupies the server's CPU envelope, the
    /// replication wait is I/O bounded by the (unbatched) Raft pipeline.
    fn dir_rpc_propose<R>(
        &self,
        stats: &mut RequestCtx,
        f: impl FnOnce(&Arc<RaftReplica<LocoSm>>) -> Result<(R, LocoCmd)>,
    ) -> Result<R> {
        let leader = self.leader()?;
        let (out, cmd) = leader.node().rpc(stats, || f(&leader))?;
        Self::propose(&leader, cmd)?;
        Ok(out)
    }

    fn propose(leader: &Arc<RaftReplica<LocoSm>>, cmd: LocoCmd) -> Result<()> {
        leader
            .propose(cmd)
            .map_err(|e| MetaError::Unavailable(format!("dir server raft: {e}")))?;
        Ok(())
    }
}

impl MetadataService for LocoFs {
    fn name(&self) -> &'static str {
        "locofs"
    }

    fn lookup(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<ResolvedPath> {
        stats.time(Phase::Lookup, |stats| {
            self.dir_rpc(stats, |l| l.state_machine().resolve(path))
        })
    }

    fn mkdir(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<InodeId> {
        let parent = path
            .parent()
            .ok_or_else(|| MetaError::InvalidPath("operation on root".into()))?;
        let name = path.name().expect("non-root").to_string();
        // LocoFS performs resolution and mutation in the same directory-
        // server visit; the whole visit is the execute phase (§6.3).
        stats.time(Phase::Execute, |stats| {
            let id = self.ids.alloc();
            let now = self.now();
            let pid = self.dir_rpc(stats, |l| {
                let sm = l.state_machine();
                let parent_res = sm.resolve(&parent)?;
                if !parent_res.permission.allows(Permission::WRITE) {
                    return Err(MetaError::PermissionDenied(path.to_string()));
                }
                if sm.table.get(parent_res.id, &name).is_some() {
                    return Err(MetaError::AlreadyExists(path.to_string()));
                }
                Ok(parent_res.id)
            })?;
            // Cross-component check: an object of this name in the object
            // DB also blocks the mkdir.
            if self.db.get_entry(pid, &name, stats).is_some() {
                return Err(MetaError::AlreadyExists(path.to_string()));
            }
            let leader = self.leader()?;
            Self::propose(
                &leader,
                LocoCmd::Mkdir {
                    pid,
                    name: Arc::from(name.as_str()),
                    id,
                    now,
                },
            )?;
            Ok(id)
        })
    }

    fn rmdir(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<()> {
        let parent = path
            .parent()
            .ok_or_else(|| MetaError::InvalidPath("operation on root".into()))?;
        let name = path.name().expect("non-root").to_string();
        let dir = stats.time(Phase::Execute, |stats| {
            self.dir_rpc_propose(stats, |l| {
                let sm = l.state_machine();
                let parent_res = sm.resolve(&parent)?;
                let Some(entry) = sm.table.get(parent_res.id, &name) else {
                    return Err(MetaError::NotFound(path.to_string()));
                };
                let attrs = sm.attrs.lock();
                let meta = attrs
                    .get(&entry.id)
                    .ok_or_else(|| MetaError::Internal("missing attrs".into()))?;
                if meta.entries != 0 {
                    return Err(MetaError::NotEmpty(path.to_string()));
                }
                drop(attrs);
                let cmd = LocoCmd::Rmdir {
                    pid: parent_res.id,
                    name: Arc::from(name.as_str()),
                    id: entry.id,
                    now: self.now(),
                };
                Ok((entry.id, cmd))
            })
        })?;
        let _ = dir;
        Ok(())
    }

    fn create(&self, path: &MetaPath, size: u64, stats: &mut RequestCtx) -> Result<InodeId> {
        let parent = path
            .parent()
            .ok_or_else(|| MetaError::InvalidPath("operation on root".into()))?;
        let name = path.name().expect("non-root").to_string();
        // Cross-component coordination (§3.3): the directory server
        // resolves the parent and applies the attribute bump, the object DB
        // holds the object row (and the duplicate check).
        let pid = stats.time(Phase::Lookup, |stats| {
            self.dir_rpc(stats, |l| {
                let sm = l.state_machine();
                let parent_res = sm.resolve(&parent)?;
                // The duplicate-name check "must go through the directory
                // node" (§3.3): a directory with this name shadows it.
                if sm.table.get(parent_res.id, &name).is_some() {
                    return Err(MetaError::AlreadyExists(path.to_string()));
                }
                Ok(parent_res.id)
            })
        })?;
        stats.time(Phase::Execute, |stats| {
            let id = self.ids.alloc();
            let now = self.now();
            self.db.insert_row(
                entry_key(pid, &name),
                Row::Object(ObjectMeta {
                    pid,
                    name: name.clone(),
                    id,
                    size,
                    blob: 0,
                    ctime: now,
                    permission: Permission::ALL,
                }),
                stats,
            )?;
            self.dir_rpc_propose(stats, |_| {
                Ok((
                    (),
                    LocoCmd::Bump {
                        dir: pid,
                        delta: AttrDelta {
                            nlink: 0,
                            entries: 1,
                            mtime: now,
                        },
                    },
                ))
            })?;
            Ok(id)
        })
    }

    fn delete(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<()> {
        let parent = path
            .parent()
            .ok_or_else(|| MetaError::InvalidPath("operation on root".into()))?;
        let name = path.name().expect("non-root").to_string();
        let pid = stats.time(Phase::Lookup, |stats| {
            self.dir_rpc(stats, |l| l.state_machine().resolve(&parent))
                .map(|r| r.id)
        })?;
        stats.time(Phase::Execute, |stats| {
            self.db.get_object(pid, &name, stats)?;
            self.db.delete_row(entry_key(pid, &name), stats)?;
            self.dir_rpc_propose(stats, |_| {
                Ok((
                    (),
                    LocoCmd::Bump {
                        dir: pid,
                        delta: AttrDelta {
                            nlink: 0,
                            entries: -1,
                            mtime: self.now(),
                        },
                    },
                ))
            })?;
            Ok(())
        })
    }

    fn objstat(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<ObjectMeta> {
        let parent = path
            .parent()
            .ok_or_else(|| MetaError::InvalidPath("operation on root".into()))?;
        let name = path.name().expect("non-root").to_string();
        let pid = stats.time(Phase::Lookup, |stats| {
            self.dir_rpc(stats, |l| l.state_machine().resolve(&parent))
                .map(|r| r.id)
        })?;
        stats.time(Phase::Execute, |stats| {
            self.db.get_object(pid, &name, stats)
        })
    }

    fn dirstat(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<DirStat> {
        // Resolution happens inside the directory-server visit — LocoFS
        // "resolves paths during the execution phase for directory
        // operations" (§6.3).
        stats.time(Phase::Execute, |stats| {
            self.dir_rpc(stats, |l| {
                let sm = l.state_machine();
                let resolved = sm.resolve(path)?;
                let attrs = sm
                    .attrs
                    .lock()
                    .get(&resolved.id)
                    .cloned()
                    .ok_or_else(|| MetaError::Internal("missing attrs".into()))?;
                Ok(DirStat {
                    id: resolved.id,
                    attrs,
                    permission: resolved.permission,
                })
            })
        })
    }

    // `list` keeps the default page-over-readdir implementation: LocoFS
    // splits a listing across the Raft state machine (subdirectories) and
    // the object DB, so there is no single ordered store to range-scan —
    // the merge below is the real cost of its layout.
    fn readdir(&self, path: &MetaPath, stats: &mut RequestCtx) -> Result<Vec<DirEntry>> {
        let (dir, mut entries) = stats.time(Phase::Execute, |stats| {
            self.dir_rpc(stats, |l| {
                let sm = l.state_machine();
                let resolved = sm.resolve(path)?;
                let dirs: Vec<DirEntry> = sm
                    .children
                    .lock()
                    .get(&resolved.id)
                    .map(|list| {
                        list.iter()
                            .map(|(n, id)| DirEntry {
                                name: n.clone(),
                                kind: EntryKind::Dir,
                                id: *id,
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                Ok((resolved.id, dirs))
            })
        })?;
        // Objects live in the object DB.
        let objects = stats.time(Phase::Execute, |stats| self.db.readdir(dir, stats));
        entries.extend(objects.into_iter().filter(|e| e.kind == EntryKind::Object));
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(entries)
    }

    fn rename_dir(&self, src: &MetaPath, dst: &MetaPath, stats: &mut RequestCtx) -> Result<()> {
        if src.is_root() || dst.is_root() {
            return Err(MetaError::InvalidRename("root cannot be renamed".into()));
        }
        stats.time(Phase::LoopDetect, |stats| {
            self.dir_rpc_propose(stats, |l| {
                let sm = l.state_machine();
                // Loop detection is local (and serialized by the leader).
                if src.is_prefix_of(dst) {
                    return Err(MetaError::RenameLoop {
                        src: src.to_string(),
                        dst: dst.to_string(),
                    });
                }
                let src_parent = sm.resolve(&src.parent().expect("non-root"))?;
                let src_name = src.name().expect("non-root");
                if sm.table.get(src_parent.id, src_name).is_none() {
                    return Err(MetaError::NotFound(src.to_string()));
                }
                let dst_parent = sm.resolve(&dst.parent().expect("non-root"))?;
                let dst_name = dst.name().expect("non-root");
                if sm.table.get(dst_parent.id, dst_name).is_some() {
                    return Err(MetaError::AlreadyExists(dst.to_string()));
                }
                if self
                    .db
                    .raw_get(&entry_key(dst_parent.id, dst_name))
                    .is_some()
                {
                    return Err(MetaError::AlreadyExists(dst.to_string()));
                }
                let cmd = LocoCmd::Rename {
                    src_pid: src_parent.id,
                    src_name: Arc::from(src_name),
                    dst_pid: dst_parent.id,
                    dst_name: Arc::from(dst_name),
                    now: self.now(),
                };
                Ok(((), cmd))
            })
        })
    }
}

impl BulkLoad for LocoFs {
    fn bulk_dir(&self, path: &MetaPath) -> InodeId {
        let mut pid = ROOT_ID;
        for comp in path.components() {
            let existing = self
                .dir_server
                .replica(0)
                .state_machine()
                .table
                .get(pid, comp);
            match existing {
                Some(e) => pid = e.id,
                None => {
                    let id = self.ids.alloc();
                    let now = self.now();
                    for r in self.dir_server.replicas() {
                        r.state_machine().insert_dir(pid, comp, id, now);
                    }
                    pid = id;
                }
            }
        }
        pid
    }

    fn bulk_object(&self, path: &MetaPath, size: u64) {
        let parent = path.parent().expect("objects cannot be the root");
        let name = path.name().expect("non-root");
        let pid = self.bulk_dir(&parent);
        let id = self.ids.alloc();
        let now = self.now();
        self.db.raw_put(
            entry_key(pid, name),
            Row::Object(ObjectMeta {
                pid,
                name: name.to_string(),
                id,
                size,
                blob: 0,
                ctime: now,
                permission: Permission::ALL,
            }),
        );
        for r in self.dir_server.replicas() {
            r.state_machine().bump(
                pid,
                &AttrDelta {
                    nlink: 0,
                    entries: 1,
                    mtime: now,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> MetaPath {
        MetaPath::parse(s).unwrap()
    }

    fn svc() -> Arc<LocoFs> {
        LocoFs::new(SimConfig::instant(), LocoFsOptions::default())
    }

    #[test]
    fn lookup_is_single_rpc() {
        let l = svc();
        l.bulk_dir(&p("/a/b/c/d/e"));
        let mut stats = RequestCtx::new();
        l.lookup(&p("/a/b/c/d/e"), &mut stats).unwrap();
        assert_eq!(stats.rpcs, 1);
    }

    #[test]
    fn object_lifecycle_spans_both_components() {
        let l = svc();
        let mut stats = RequestCtx::new();
        l.mkdir(&p("/d"), &mut stats).unwrap();
        let mut cstats = RequestCtx::new();
        l.create(&p("/d/o"), 33, &mut cstats).unwrap();
        // Dir-server resolve + DB insert + dir-server bump = 3 RPCs, the
        // cross-component coordination overhead of §3.3.
        assert_eq!(cstats.rpcs, 3);
        assert_eq!(l.objstat(&p("/d/o"), &mut stats).unwrap().size, 33);
        assert_eq!(l.dirstat(&p("/d"), &mut stats).unwrap().attrs.entries, 1);
        l.delete(&p("/d/o"), &mut stats).unwrap();
        assert_eq!(l.dirstat(&p("/d"), &mut stats).unwrap().attrs.entries, 0);
        l.rmdir(&p("/d"), &mut stats).unwrap();
        assert!(l.lookup(&p("/d"), &mut stats).is_err());
    }

    #[test]
    fn readdir_merges_dirs_and_objects() {
        let l = svc();
        let mut stats = RequestCtx::new();
        l.bulk_dir(&p("/d/sub"));
        l.bulk_object(&p("/d/obj"), 1);
        let names: Vec<String> = l
            .readdir(&p("/d"), &mut stats)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["obj", "sub"]);
    }

    #[test]
    fn rename_moves_subtree_and_detects_loops() {
        let l = svc();
        let mut stats = RequestCtx::new();
        l.bulk_dir(&p("/x/y"));
        l.bulk_object(&p("/x/y/o"), 5);
        l.bulk_dir(&p("/z"));
        assert!(matches!(
            l.rename_dir(&p("/x"), &p("/x/y/in"), &mut stats),
            Err(MetaError::RenameLoop { .. })
        ));
        l.rename_dir(&p("/x/y"), &p("/z/y2"), &mut stats).unwrap();
        assert_eq!(l.objstat(&p("/z/y2/o"), &mut stats).unwrap().size, 5);
        assert!(l.lookup(&p("/x/y"), &mut stats).is_err());
        // Entry counts moved.
        assert_eq!(l.dirstat(&p("/x"), &mut stats).unwrap().attrs.entries, 0);
        assert_eq!(l.dirstat(&p("/z"), &mut stats).unwrap().attrs.entries, 1);
    }

    #[test]
    fn rmdir_nonempty_rejected_via_attr_counts() {
        let l = svc();
        let mut stats = RequestCtx::new();
        l.bulk_dir(&p("/d"));
        l.bulk_object(&p("/d/o"), 1);
        assert!(matches!(
            l.rmdir(&p("/d"), &mut stats),
            Err(MetaError::NotEmpty(_))
        ));
    }
}
