//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API the workspace uses —
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and the [`Rng`]
//! extension methods `gen`, `gen_bool` and `gen_range` — on top of a
//! splitmix64 generator. Determinism is per-seed, as the callers expect;
//! the exact stream differs from upstream rand, which no caller relies on.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly at random via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::draw(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::draw(self) < p
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Vigna): passes BigCrush, one add + three xorshifts.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3..=5usize);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let n = rng.gen_range(-4..4i32);
            assert!((-4..4).contains(&n));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn unit_interval_is_half_open() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
