//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy/runner subset the workspace's property tests
//! use: the [`proptest!`], [`prop_assert!`]-family and [`prop_oneof!`]
//! macros, range/tuple/vec/select/regex-literal strategies, and
//! [`ProptestConfig::with_cases`]. Cases are generated from a
//! deterministic per-test seed; failing inputs are reported via `Debug`
//! but not shrunk (upstream proptest shrinks; nothing in the workspace
//! depends on that).

use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, so each property test draws a
    /// stable but distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis.
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state }
    }

    /// Returns the next pseudo-random 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Per-test configuration (`cases` only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property assertion, carried back to the runner.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError { msg }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (**self).gen_value(rng)
    }
}

/// Boxes a strategy (used by [`prop_oneof!`] to unify arm types).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between boxed strategies; built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.gen_value(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum checked in Union::new")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
);

/// Uniform values of a whole type, via [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A` (full value range).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn gen_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// String strategy from a simple regex literal.
///
/// Supports the subset the tests use: sequences of literal characters and
/// `[a-z...]` character classes, each optionally followed by `{n}` or
/// `{m,n}` repetition.
impl Strategy for &str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern {self:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        set.extend((lo..=hi).filter(char::is_ascii));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            assert!(!alphabet.is_empty(), "empty character class in {self:?}");
            // Optional repetition suffix.
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern {self:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("repetition min"),
                        n.trim().parse::<usize>().expect("repetition max"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = if min == max {
                min
            } else {
                min + rng.below((max - min + 1) as u64) as usize
            };
            for _ in 0..count {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    /// Strategy returned by [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    (@impl $config:expr;
     $( $(#[$meta:meta])* fn $name:ident
        ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::gen_value(&$strat, &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name), case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ::std::default::Default::default(); $($rest)*);
    };
}

/// Asserts a condition inside [`proptest!`], failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside [`proptest!`], failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Asserts inequality inside [`proptest!`], failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Weighted or unweighted choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( (($weight) as u32, $crate::boxed($strat)) ),+ ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( (1u32, $crate::boxed($strat)) ),+ ])
    };
}

pub mod prelude {
    //! The names property tests import.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    pub mod prop {
        //! `prop::collection` / `prop::sample` as upstream spells them.
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, y in 2usize..=4, s in "[a-c]{1,3}") {
            prop_assert!((3..9).contains(&x));
            prop_assert!((2..=4).contains(&y));
            prop_assert!(!s.is_empty() && s.len() <= 3);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0u32..5, any::<bool>()), 1..6),
            pick in prop::sample::select(vec!["x", "y"]),
            tagged in prop_oneof![3 => (0u8..4).prop_map(|n| n as u16), 1 => (10u8..12).prop_map(|n| n as u16)],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|(n, _)| *n < 5));
            prop_assert!(pick == "x" || pick == "y");
            prop_assert!(tagged < 4 || (10..12).contains(&tagged));
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = super::TestRng::deterministic("seed");
        let mut b = super::TestRng::deterministic("seed");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
