//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! small API subset it actually uses: [`Mutex`], [`RwLock`], [`Condvar`] and
//! their guards, all backed by `std::sync` with parking_lot's poison-free
//! calling convention (`lock()` returns the guard directly; a poisoned lock
//! is recovered rather than propagated, matching parking_lot semantics where
//! panics never poison).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock with parking_lot's poison-free API.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(g) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` indirection lets [`Condvar::wait`]
/// temporarily take the underlying std guard by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock with parking_lot's poison-free API.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                inner: e.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// The result of a timed [`Condvar`] wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable directly with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Blocks until notified or the timeout elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one waiting thread. Returns whether a thread could have been
    /// woken (std does not report this; `true` is always returned).
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiting threads. Returns the number of woken threads (std
    /// does not report this; `0` is always returned).
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_and_condvar_round_trip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let handle = thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            *ready = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        handle.join().unwrap();
        assert!(*lock.lock());
    }

    #[test]
    fn wait_for_times_out() {
        let lock = Mutex::new(());
        let cv = Condvar::new();
        let mut g = lock.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(7u32);
        let a = l.read();
        let b = l.read();
        assert_eq!((*a, *b), (7, 7));
        drop((a, b));
        *l.write() += 1;
        assert_eq!(*l.read(), 8);
    }
}
