//! Offline stand-in for the `criterion` crate.
//!
//! Supports the API subset the workspace benches use — `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros — with a
//! simple calibrated-loop timer instead of criterion's statistics engine:
//! each benchmark is warmed up, then timed for a fixed budget, and the mean
//! per-iteration latency is printed.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(100),
            budget: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.warm_up, self.budget, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            group: name.to_string(),
        }
    }
}

/// A named group of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let name = format!("{}/{}", self.group, id.label);
        run_one(&name, self.criterion.warm_up, self.criterion.budget, &mut f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let name = format!("{}/{}", self.group, id.label);
        run_one(
            &name,
            self.criterion.warm_up,
            self.criterion.budget,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    warm_up: Duration,
    budget: Duration,
    /// Mean per-iteration time of the measured phase.
    mean_nanos: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly and records the mean latency.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also calibrates how many iterations fit in the budget.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_nanos() as f64 / warm_iters.max(1) as f64;
        let target = ((self.budget.as_nanos() as f64 / per_iter) as u64).clamp(10, 10_000_000);

        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_nanos = elapsed.as_nanos() as f64 / target as f64;
        self.iters = target;
    }
}

fn run_one(name: &str, warm_up: Duration, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        warm_up,
        budget,
        mean_nanos: f64::NAN,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("  {name}: no measurement (closure never called iter)");
        return;
    }
    let mean = b.mean_nanos;
    let human = if mean >= 1e9 {
        format!("{:.3} s", mean / 1e9)
    } else if mean >= 1e6 {
        format!("{:.3} ms", mean / 1e6)
    } else if mean >= 1e3 {
        format!("{:.3} µs", mean / 1e3)
    } else {
        format!("{mean:.1} ns")
    };
    println!("  {name}: {human}/iter ({} iters)", b.iters);
}

/// Declares a benchmark group function, as `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, as `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(2),
            budget: Duration::from_millis(5),
        };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("p", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }
}
