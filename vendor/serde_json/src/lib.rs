//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the vendored [`serde::Value`] document model to JSON text
//! ([`to_string`], [`to_string_pretty`]), lifts any [`serde::Serialize`]
//! into a [`Value`] ([`to_value`]), parses JSON text back into a [`Value`]
//! ([`from_str`]), and provides a [`json!`] subset macro (object/array
//! literals whose values are expressions).

use std::fmt;

pub use serde::Value;

/// Error surface of this stub (parse errors; serialization is infallible).
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Result alias matching serde_json's spelling.
pub type Result<T> = std::result::Result<T, Error>;

/// Lifts any serializable value into a [`Value`].
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.to_json())
}

/// Renders a value as compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_json(), &mut out, None, 0);
    Ok(out)
}

/// Renders a value as 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_json(), &mut out, Some(2), 0);
    Ok(out)
}

/// Types reconstructible from JSON text. Only [`Value`] implements this —
/// the stub has no typed deserialization.
pub trait FromJson: Sized {
    /// Builds `Self` from a parsed document.
    fn from_json_value(value: Value) -> Result<Self>;
}

impl FromJson for Value {
    fn from_json_value(value: Value) -> Result<Self> {
        Ok(value)
    }
}

/// Parses JSON text. `T` is [`Value`] in this stub.
pub fn from_str<T: FromJson>(text: &str) -> Result<T> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::from_json_value(value)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                out.push_str(&format!("{n:?}"))
            } else {
                out.push_str("null")
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
            write_value(&items[i], out, indent, depth + 1)
        }),
        Value::Object(pairs) => write_seq(out, indent, depth, pairs.len(), '{', '}', |out, i| {
            write_escaped(&pairs[i].0, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(&pairs[i].1, out, indent, depth + 1)
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: format!("{msg} at byte {}", self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Subset of serde_json's `json!`: `null`, object literals with literal
/// keys and expression values, array literals of expressions, and bare
/// serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::to_value(&$val).expect("serializable")) ),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![
            $( $crate::to_value(&$elem).expect("serializable") ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other).expect("serializable") };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact_and_pretty() {
        let doc = json!({
            "name": "fig",
            "rows": vec![1u64, 2, 3],
            "nested": json!({"k": 0.5f64}),
            "none": Option::<u64>::None,
        });
        for text in [to_string(&doc).unwrap(), to_string_pretty(&doc).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, doc);
        }
    }

    #[test]
    fn escapes_survive_round_trip() {
        let doc = Value::Str("a\"b\\c\nd\te\u{1}".to_string());
        let text = to_string(&doc).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("hello").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }

    #[test]
    fn numbers_pick_narrowest_variant() {
        assert_eq!(from_str::<Value>("42").unwrap(), Value::U64(42));
        assert_eq!(from_str::<Value>("-7").unwrap(), Value::I64(-7));
        assert_eq!(from_str::<Value>("2.5").unwrap(), Value::F64(2.5));
    }
}
