//! Offline stand-in for the `serde` crate.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal serialization framework with serde's spelling: a [`Serialize`]
//! trait (plus `#[derive(Serialize)]` from the companion `serde_derive`
//! stub) that lowers values into an in-memory JSON [`Value`]. The
//! `serde_json` stub renders and parses that `Value`. Deserialization of
//! arbitrary types is not implemented — nothing in the workspace uses it —
//! so `#[derive(Deserialize)]` is accepted and expands to nothing.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// An in-memory JSON document.
///
/// Objects keep insertion order (serde_json's `preserve_order` behaviour)
/// so emitted files stay diffable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number holding a signed integer exactly.
    I64(i64),
    /// JSON number holding an unsigned integer exactly.
    U64(u64),
    /// JSON number holding a float.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Lowers a value into a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` to its JSON representation.
    fn to_json(&self) -> Value;
}

/// Marker accepted by `#[derive(Deserialize)]`; reconstruction from JSON is
/// intentionally unimplemented (unused in this workspace).
pub trait Deserialize<'de>: Sized {}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64, usize);
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_json(&self) -> Value {
        // JSON numbers cap at u64 here; larger ids render as strings.
        match u64::try_from(*self) {
            Ok(v) => Value::U64(v),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Serialize for i128 {
    fn to_json(&self) -> Value {
        match i64::try_from(*self) {
            Ok(v) => Value::I64(v),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_json(&self) -> Value {
        Value::Null
    }
}

impl Serialize for Duration {
    fn to_json(&self) -> Value {
        // serde's layout for Duration: {"secs": u64, "nanos": u32}.
        Value::Object(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            (
                "nanos".to_string(),
                Value::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_json(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(5u32.to_json(), Value::U64(5));
        assert_eq!((-3i64).to_json(), Value::I64(-3));
        assert_eq!("hi".to_json(), Value::Str("hi".into()));
        assert_eq!(None::<u64>.to_json(), Value::Null);
        assert_eq!(
            vec![1u64, 2].to_json(),
            Value::Array(vec![Value::U64(1), Value::U64(2)])
        );
    }

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("b"), None);
    }
}
