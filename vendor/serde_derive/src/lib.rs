//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` by hand-parsing the item's token
//! stream (the container has no `syn`/`quote`), generating an impl of the
//! vendored `serde::Serialize` trait that lowers the value to a JSON
//! `serde::Value`. Shapes supported — all the workspace uses:
//!
//! * named-field structs → JSON object
//! * newtype structs → the inner value (serde's newtype behaviour)
//! * tuple structs → JSON array; unit structs → `null`
//! * enums: unit variants → the variant name as a string; newtype
//!   variants → `{"Variant": inner}`; tuple variants → `{"Variant": [..]}`;
//!   struct variants → `{"Variant": {..}}` (externally tagged)
//! * plain type/lifetime generics (each type param gets a `Serialize` bound)
//!
//! `#[derive(Deserialize)]` is accepted and expands to nothing: nothing in
//! the workspace deserializes typed values, and the vendored `serde` keeps
//! `Deserialize` as an unused marker.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = generate_impl(&item);
    code.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

struct Item {
    is_enum: bool,
    name: String,
    /// Generic parameters as written, e.g. `["'a", "T"]`.
    generics: Vec<String>,
    /// Named fields / tuple arity for structs.
    fields: Fields,
    /// Enum variants.
    variants: Vec<Variant>,
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = expect_ident(&tokens, &mut i);
    let is_enum = match kind.as_str() {
        "struct" => false,
        "enum" => true,
        other => panic!("derive(Serialize): unsupported item kind `{other}`"),
    };
    let name = expect_ident(&tokens, &mut i);
    let generics = parse_generics(&tokens, &mut i);

    if is_enum {
        let group = expect_group(&tokens, &mut i, Delimiter::Brace);
        let variants = parse_variants(group);
        Item {
            is_enum,
            name,
            generics,
            fields: Fields::Unit,
            variants,
        }
    } else {
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                parse_named_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        Item {
            is_enum,
            name,
            generics,
            fields,
            variants: Vec::new(),
        }
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                *i += 1; // bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("derive(Serialize): expected identifier, found {other:?}"),
    }
}

fn expect_group(tokens: &[TokenTree], i: &mut usize, delim: Delimiter) -> TokenStream {
    match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == delim => {
            *i += 1;
            g.stream()
        }
        other => panic!("derive(Serialize): expected {delim:?} group, found {other:?}"),
    }
}

/// Parses `<...>` after the item name into the list of parameter names
/// (bounds and defaults are dropped; each type param is re-bounded with
/// `Serialize` at emission time).
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    *i += 1;
    let mut depth = 1usize;
    let mut params = Vec::new();
    let mut current: Vec<String> = Vec::new();
    while depth > 0 {
        let tt = tokens
            .get(*i)
            .unwrap_or_else(|| panic!("derive(Serialize): unterminated generics"));
        *i += 1;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                if let Some(param) = param_name(&current) {
                    params.push(param);
                }
                current.clear();
            }
            other => current.push(other.to_string()),
        }
    }
    if let Some(param) = param_name(&current) {
        params.push(param);
    }
    params
}

/// The parameter name from its token spelling: `'a`, `T`, `T : Bound`, …
fn param_name(tokens: &[String]) -> Option<String> {
    let first = tokens.first()?;
    if first == "'" {
        return Some(format!("'{}", tokens.get(1)?));
    }
    Some(first.clone())
}

fn parse_named_fields(stream: TokenStream) -> Fields {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut names = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        names.push(expect_ident(&tokens, &mut i));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("derive(Serialize): expected `:` after field, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
    }
    Fields::Named(names)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut i);
    }
    count
}

/// Advances past one type, stopping after the `,` that ends it (or at end
/// of stream). Tracks `<...>` nesting so commas inside generics don't split.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0usize;
    while let Some(tt) = tokens.get(*i) {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle = angle.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                parse_named_fields(g.stream())
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while let Some(tt) = tokens.get(i) {
            i += 1;
            if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn generate_impl(item: &Item) -> String {
    let name = &item.name;
    let (impl_params, type_args) = render_generics(&item.generics);
    let body = if item.is_enum {
        generate_enum_body(name, &item.variants)
    } else {
        generate_struct_body(&item.fields)
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_params} ::serde::Serialize for {name}{type_args} {{\n\
             fn to_json(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn render_generics(params: &[String]) -> (String, String) {
    if params.is_empty() {
        return (String::new(), String::new());
    }
    let bounded: Vec<String> = params
        .iter()
        .map(|p| {
            if p.starts_with('\'') {
                p.clone()
            } else {
                format!("{p}: ::serde::Serialize")
            }
        })
        .collect();
    (
        format!("<{}>", bounded.join(", ")),
        format!("<{}>", params.join(", ")),
    )
}

fn generate_struct_body(fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            let pairs: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_json(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![\n{}\n])",
                pairs.join(",\n")
            )
        }
        Fields::Tuple(1) => "::serde::Serialize::to_json(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Serialize::to_json(&self.{idx})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    }
}

fn generate_enum_body(name: &str, variants: &[Variant]) -> String {
    if variants.is_empty() {
        return "match *self {}".to_string();
    }
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.fields {
                Fields::Unit => format!(
                    "{name}::{vname} => \
                     ::serde::Value::Str(::std::string::String::from(\"{vname}\"))"
                ),
                Fields::Tuple(n) => {
                    let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                    let payload = if *n == 1 {
                        "::serde::Serialize::to_json(f0)".to_string()
                    } else {
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json({b})"))
                            .collect();
                        format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                    };
                    format!(
                        "{name}::{vname}({binds}) => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{vname}\"), {payload})])",
                        binds = binders.join(", ")
                    )
                }
                Fields::Named(fields) => {
                    let pairs: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_json({f}))"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{vname}\"), \
                         ::serde::Value::Object(::std::vec![{pairs}]))])",
                        binds = fields.join(", "),
                        pairs = pairs.join(", ")
                    )
                }
            }
        })
        .collect();
    format!("match self {{\n{}\n}}", arms.join(",\n"))
}
